package dsp

import (
	"math/rand"
	"testing"
)

// Benchmark templates mirror the receiver's preamble matched filters: an
// 8-bit preamble over a 31- or 127-chip code at 4 samples per chip. The
// input is four template lengths of samples — the scale of one collision
// round's alignment sweep.

func benchVectors(chips int) (x []complex128, env []float64, tmpl []float64) {
	rng := rand.New(rand.NewSource(9))
	m := 8 * chips * 4
	n := 4 * m
	x = randComplex(rng, n)
	env = randReal(rng, n)
	tmpl = randReal(rng, m)
	return x, env, tmpl
}

func benchmarkCorrelateRealDirect(b *testing.B, chips int) {
	_, env, tmpl := benchVectors(chips)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := CrossCorrelateReal(env, tmpl); out == nil {
			b.Fatal("nil result")
		}
	}
}

func benchmarkCorrelateRealFFT(b *testing.B, chips int) {
	_, env, tmpl := benchVectors(chips)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := CrossCorrelateRealFFT(env, tmpl); out == nil {
			b.Fatal("nil result")
		}
	}
}

func BenchmarkCorrelateReal31Direct(b *testing.B) { benchmarkCorrelateRealDirect(b, 31) }
func BenchmarkCorrelateReal31FFT(b *testing.B)    { benchmarkCorrelateRealFFT(b, 31) }

func BenchmarkCorrelateReal127Direct(b *testing.B) { benchmarkCorrelateRealDirect(b, 127) }
func BenchmarkCorrelateReal127FFT(b *testing.B)    { benchmarkCorrelateRealFFT(b, 127) }

func benchmarkCorrelateComplex(b *testing.B, chips int, fft bool) {
	x, _, _ := benchVectors(chips)
	rng := rand.New(rand.NewSource(10))
	tmpl := randComplex(rng, 8*chips*4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var out []complex128
		if fft {
			out = CrossCorrelateFFT(x, tmpl)
		} else {
			out = CrossCorrelate(x, tmpl)
		}
		if out == nil {
			b.Fatal("nil result")
		}
	}
}

func BenchmarkCorrelateComplex127Direct(b *testing.B) { benchmarkCorrelateComplex(b, 127, false) }
func BenchmarkCorrelateComplex127FFT(b *testing.B)    { benchmarkCorrelateComplex(b, 127, true) }

// BenchmarkCorrelateBankSweep127 measures the receiver-shaped query: ten
// 127-chip preamble templates swept over one alignment window, sharing the
// input transform.
func BenchmarkCorrelateBankSweep127(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	const nt = 10
	m := 8 * 127 * 4
	tmpls := make([][]float64, nt)
	for i := range tmpls {
		tmpls[i] = randReal(rng, m)
	}
	fb, err := NewFilterBank(tmpls)
	if err != nil {
		b.Fatal(err)
	}
	count := 127*4 + 17 // the globalAlign window at 4 samples per chip
	env := randReal(rng, count+m+64)
	rows := make([][]float64, nt)
	for i := range rows {
		rows[i] = make([]float64, count)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fb.CorrelateRealAll(env, 0, count, nil, rows); err != nil {
			b.Fatal(err)
		}
	}
}
