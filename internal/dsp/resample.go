package dsp

import "errors"

// ErrBadFactor is returned for non-positive resampling factors.
var ErrBadFactor = errors.New("dsp: resampling factor must be >= 1")

// ErrBadOffset is returned for negative sampling offsets.
var ErrBadOffset = errors.New("dsp: sampling offset must be >= 0")

// UpsampleHold repeats every input sample factor times (zero-order hold).
// This models the tag's upsampling block: the FPGA holds each data bit for
// an integer number of subcarrier periods (§VI, Eq. 3).
func UpsampleHold(x []complex128, factor int) ([]complex128, error) {
	if factor < 1 {
		return nil, ErrBadFactor
	}
	out := make([]complex128, len(x)*factor)
	for i := range x {
		base := i * factor
		for k := 0; k < factor; k++ {
			out[base+k] = x[i]
		}
	}
	return out, nil
}

// UpsampleHoldBits is UpsampleHold for bit vectors (0/1), used on the tag's
// chip stream before the AND with the square wave.
func UpsampleHoldBits(bits []byte, factor int) ([]byte, error) {
	if factor < 1 {
		return nil, ErrBadFactor
	}
	out := make([]byte, len(bits)*factor)
	for i, b := range bits {
		base := i * factor
		for k := 0; k < factor; k++ {
			out[base+k] = b
		}
	}
	return out, nil
}

// Downsample keeps every factor-th sample starting at offset. The CBMA
// receiver downsamples after computing the power envelope because its
// sampling rate exceeds the chip rate (§V-B).
func Downsample(x []complex128, factor, offset int) ([]complex128, error) {
	if factor < 1 {
		return nil, ErrBadFactor
	}
	if offset < 0 {
		return nil, ErrBadOffset
	}
	if offset >= len(x) {
		return nil, nil
	}
	n := (len(x) - offset + factor - 1) / factor
	out := make([]complex128, 0, n)
	for i := offset; i < len(x); i += factor {
		out = append(out, x[i])
	}
	return out, nil
}

// DownsampleMean averages each consecutive block of factor samples —
// an integrate-and-dump matched to rectangular chips, which is what a
// correlation receiver effectively does per chip.
func DownsampleMean(x []float64, factor int) ([]float64, error) {
	if factor < 1 {
		return nil, ErrBadFactor
	}
	n := len(x) / factor
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		var acc float64
		base := i * factor
		for k := 0; k < factor; k++ {
			acc += x[base+k]
		}
		out[i] = acc / float64(factor)
	}
	return out, nil
}

// DownsampleSumInto writes the consecutive block sums of x — factor samples
// per block, the trailing partial block dropped — into dst, growing it only
// when its capacity is short. It is the allocation-free, unnormalized form
// of DownsampleMean: an integrate-and-dump to chip rate, which is what the
// receiver's coarse alignment pass runs its decimated correlations on.
//
//cbma:hotpath
func DownsampleSumInto(dst, x []float64, factor int) ([]float64, error) {
	if factor < 1 {
		return nil, ErrBadFactor
	}
	n := len(x) / factor
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	for i := 0; i < n; i++ {
		var acc float64
		base := i * factor
		for k := 0; k < factor; k++ {
			acc += x[base+k]
		}
		dst[i] = acc
	}
	return dst, nil
}

// FractionalDelay delays x by d samples (d may be fractional and ≥ 0) using
// linear interpolation, padding the head with zeros. The simulator uses it
// to realize per-tag asynchronous clock offsets that are not sample-aligned.
func FractionalDelay(x []complex128, d float64) []complex128 {
	if d <= 0 {
		out := make([]complex128, len(x))
		copy(out, x)
		return out
	}
	whole := int(d)
	frac := d - float64(whole)
	out := make([]complex128, len(x))
	for i := range out {
		j := i - whole
		// Linearly interpolate between x[j-1] and x[j] with weight frac.
		var a, b complex128
		if j-1 >= 0 && j-1 < len(x) {
			a = x[j-1]
		}
		if j >= 0 && j < len(x) {
			b = x[j]
		}
		out[i] = b*complex(1-frac, 0) + a*complex(frac, 0)
	}
	return out
}

// FractionalDelayInPlace applies a purely sub-sample delay (0 ≤ d < 1) to x
// in place — the allocation-free form of FractionalDelay for callers that
// have already split off the whole-sample part. The backward iteration
// reads x[i] and x[i−1] before x[i] is overwritten, so no scratch is
// needed, and the arithmetic matches FractionalDelay exactly.
//
//cbma:hotpath
func FractionalDelayInPlace(x []complex128, d float64) {
	if d <= 0 {
		return
	}
	for i := len(x) - 1; i >= 0; i-- {
		var a complex128
		if i > 0 {
			a = x[i-1]
		}
		x[i] = x[i]*complex(1-d, 0) + a*complex(d, 0)
	}
}

// ShiftInt delays (d > 0) or advances (d < 0) x by an integer number of
// samples, zero-filling the vacated positions. The output has the same
// length as the input.
func ShiftInt(x []complex128, d int) []complex128 {
	out := make([]complex128, len(x))
	for i := range out {
		j := i - d
		if j >= 0 && j < len(x) {
			out[i] = x[j]
		}
	}
	return out
}
