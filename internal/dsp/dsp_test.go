package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

const floatTol = 1e-9

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func complexAlmostEqual(a, b complex128, tol float64) bool {
	return cmplx.Abs(a-b) <= tol
}

func randomVector(r *rand.Rand, n int) []complex128 {
	out := make([]complex128, n)
	for i := range out {
		out[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	return out
}

func TestAddLengthMismatch(t *testing.T) {
	if _, err := Add([]complex128{1}, []complex128{1, 2}); err != ErrLengthMismatch {
		t.Fatalf("Add mismatched lengths: got err %v, want ErrLengthMismatch", err)
	}
}

func TestAddElementwise(t *testing.T) {
	a := []complex128{1 + 2i, 3}
	b := []complex128{5, -1i}
	got, err := Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []complex128{6 + 2i, 3 - 1i}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Add[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestAccumulateInto(t *testing.T) {
	dst := []complex128{1, 2, 3}
	src := []complex128{10, 20, 30}
	if err := AccumulateInto(dst, src); err != nil {
		t.Fatal(err)
	}
	want := []complex128{11, 22, 33}
	for i := range want {
		if dst[i] != want[i] {
			t.Errorf("dst[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
	if err := AccumulateInto(dst, src[:2]); err != ErrLengthMismatch {
		t.Errorf("short src: got err %v, want ErrLengthMismatch", err)
	}
}

func TestScaleAndScaleInto(t *testing.T) {
	x := []complex128{1, 1i}
	got := Scale(x, 2i)
	if got[0] != 2i || got[1] != -2 {
		t.Errorf("Scale = %v", got)
	}
	if x[0] != 1 {
		t.Error("Scale must not mutate its input")
	}
	ScaleInto(x, 3)
	if x[0] != 3 || x[1] != 3i {
		t.Errorf("ScaleInto = %v", x)
	}
}

func TestConjInvolution(t *testing.T) {
	f := func(re, im float64) bool {
		x := []complex128{complex(re, im)}
		return Conj(Conj(x))[0] == x[0]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMagnitudeAndMagSquared(t *testing.T) {
	x := []complex128{3 + 4i, 0, -1i}
	mag := Magnitude(x)
	if !almostEqual(mag[0], 5, floatTol) || mag[1] != 0 || !almostEqual(mag[2], 1, floatTol) {
		t.Errorf("Magnitude = %v", mag)
	}
	sq := MagSquared(x)
	if !almostEqual(sq[0], 25, floatTol) {
		t.Errorf("MagSquared[0] = %v, want 25", sq[0])
	}
}

func TestMagSquaredMatchesMagnitude(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	x := randomVector(r, 64)
	mag := Magnitude(x)
	sq := MagSquared(x)
	for i := range x {
		if !almostEqual(sq[i], mag[i]*mag[i], 1e-9) {
			t.Fatalf("sample %d: |x|²=%v but |x|·|x|=%v", i, sq[i], mag[i]*mag[i])
		}
	}
}

func TestDotConjSelfIsEnergy(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	x := randomVector(r, 100)
	dot, err := DotConj(x, x)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(real(dot), Energy(x), 1e-9) {
		t.Errorf("re(x·x*) = %v, Energy = %v", real(dot), Energy(x))
	}
	if !almostEqual(imag(dot), 0, 1e-9) {
		t.Errorf("im(x·x*) = %v, want 0", imag(dot))
	}
}

func TestDotRealKnown(t *testing.T) {
	got, err := DotReal([]float64{1, 2, 3}, []float64{4, 5, 6})
	if err != nil {
		t.Fatal(err)
	}
	if got != 32 {
		t.Errorf("DotReal = %v, want 32", got)
	}
	if _, err := DotReal([]float64{1}, nil); err != ErrLengthMismatch {
		t.Errorf("got err %v, want ErrLengthMismatch", err)
	}
}

func TestMeanPowerEmpty(t *testing.T) {
	if got := MeanPower(nil); got != 0 {
		t.Errorf("MeanPower(nil) = %v, want 0", got)
	}
}

func TestNormalizeUnitRMS(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	x := randomVector(r, 257)
	n := Normalize(x)
	if !almostEqual(RMS(n), 1, 1e-9) {
		t.Errorf("RMS after Normalize = %v, want 1", RMS(n))
	}
}

func TestNormalizeZeroVector(t *testing.T) {
	x := make([]complex128, 8)
	n := Normalize(x)
	if len(n) != 8 {
		t.Fatalf("len = %d", len(n))
	}
	for _, v := range n {
		if v != 0 {
			t.Fatal("zero vector must normalize to itself")
		}
	}
}

func TestRotatePreservesMagnitude(t *testing.T) {
	f := func(re, im, theta float64) bool {
		if math.IsNaN(re) || math.IsNaN(im) || math.IsNaN(theta) ||
			math.IsInf(re, 0) || math.IsInf(im, 0) || math.IsInf(theta, 0) {
			return true
		}
		// Keep magnitudes sane to avoid overflow noise.
		re, im = math.Mod(re, 1e6), math.Mod(im, 1e6)
		theta = math.Mod(theta, 2*math.Pi)
		x := []complex128{complex(re, im)}
		y := Rotate(x, theta)
		return almostEqual(cmplx.Abs(y[0]), cmplx.Abs(x[0]), 1e-6*(1+cmplx.Abs(x[0])))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestToneUnitAmplitudeAndFrequency(t *testing.T) {
	const n = 64
	const f = 0.25 // quarter cycle per sample
	x := Tone(n, f, 0)
	for i, v := range x {
		if !almostEqual(cmplx.Abs(v), 1, floatTol) {
			t.Fatalf("sample %d magnitude %v, want 1", i, cmplx.Abs(v))
		}
	}
	// At f=0.25 the tone advances 90° per sample: x[1] should be ~j.
	if !complexAlmostEqual(x[1], 1i, 1e-9) {
		t.Errorf("x[1] = %v, want i", x[1])
	}
}

func TestMixToneRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	x := randomVector(r, 128)
	shifted := MixTone(x, 0.1, 0.3)
	back := MixTone(shifted, -0.1, -0.3)
	for i := range x {
		if !complexAlmostEqual(back[i], x[i], 1e-9) {
			t.Fatalf("sample %d: %v != %v", i, back[i], x[i])
		}
	}
}

func TestArgMaxFloat(t *testing.T) {
	tests := []struct {
		name    string
		in      []float64
		wantI   int
		wantV   float64
		wantErr bool
	}{
		{name: "empty", in: nil, wantErr: true},
		{name: "single", in: []float64{7}, wantI: 0, wantV: 7},
		{name: "middle", in: []float64{1, 9, 3}, wantI: 1, wantV: 9},
		{name: "ties keep first", in: []float64{5, 5, 5}, wantI: 0, wantV: 5},
		{name: "negative", in: []float64{-3, -1, -2}, wantI: 1, wantV: -1},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			i, v, err := ArgMaxFloat(tc.in)
			if tc.wantErr {
				if err == nil {
					t.Fatal("want error")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if i != tc.wantI || v != tc.wantV {
				t.Errorf("got (%d, %v), want (%d, %v)", i, v, tc.wantI, tc.wantV)
			}
		})
	}
}

func TestMaxAbs(t *testing.T) {
	if got := MaxAbs(nil); got != 0 {
		t.Errorf("MaxAbs(nil) = %v", got)
	}
	x := []complex128{1, 3 + 4i, 2i}
	if got := MaxAbs(x); !almostEqual(got, 5, floatTol) {
		t.Errorf("MaxAbs = %v, want 5", got)
	}
}

func TestEnergyAdditivityProperty(t *testing.T) {
	// Energy of concatenation equals sum of energies.
	r := rand.New(rand.NewSource(5))
	a := randomVector(r, 31)
	b := randomVector(r, 17)
	cat := append(append([]complex128{}, a...), b...)
	if !almostEqual(Energy(cat), Energy(a)+Energy(b), 1e-9) {
		t.Error("energy must be additive over concatenation")
	}
}
