package dsp

import "math"

// Goertzel evaluates the power of the single DFT bin at normalized frequency
// f (cycles per sample) over the real sequence x. It is the classic
// single-tone detector: O(n) instead of a full FFT, matching what a
// resource-constrained receiver would run to detect the backscatter
// subcarrier.
func Goertzel(x []float64, f float64) float64 {
	if len(x) == 0 {
		return 0
	}
	coeff := 2 * math.Cos(2*math.Pi*f)
	var s0, s1, s2 float64
	for _, v := range x {
		s0 = v + coeff*s1 - s2
		s2 = s1
		s1 = s0
	}
	// Power of the bin.
	return s1*s1 + s2*s2 - coeff*s1*s2
}

// GoertzelComplex runs the Goertzel detector independently on the I and Q
// rails of a complex sequence and sums the bin powers.
func GoertzelComplex(x []complex128, f float64) float64 {
	if len(x) == 0 {
		return 0
	}
	re := make([]float64, len(x))
	im := make([]float64, len(x))
	for i := range x {
		re[i] = real(x[i])
		im[i] = imag(x[i])
	}
	return Goertzel(re, f) + Goertzel(im, f)
}

// ToneSNR estimates the ratio (in dB) of the Goertzel bin power at f to the
// average bin power across the supplied probe frequencies, a cheap
// subcarrier-presence metric used by diagnostics tooling.
func ToneSNR(x []complex128, f float64, probes []float64) float64 {
	sig := GoertzelComplex(x, f)
	if len(probes) == 0 {
		return math.Inf(1)
	}
	var bg float64
	for _, p := range probes {
		bg += GoertzelComplex(x, p)
	}
	bg /= float64(len(probes))
	if bg == 0 {
		return math.Inf(1)
	}
	return DB(sig / bg)
}
