package dsp

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUpsampleHold(t *testing.T) {
	x := []complex128{1, 2i}
	got, err := UpsampleHold(x, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []complex128{1, 1, 1, 2i, 2i, 2i}
	if len(got) != len(want) {
		t.Fatalf("len %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("sample %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestUpsampleHoldBadFactor(t *testing.T) {
	if _, err := UpsampleHold([]complex128{1}, 0); err != ErrBadFactor {
		t.Fatalf("got %v, want ErrBadFactor", err)
	}
	if _, err := UpsampleHoldBits([]byte{1}, -1); err != ErrBadFactor {
		t.Fatalf("got %v, want ErrBadFactor", err)
	}
}

func TestUpsampleHoldBits(t *testing.T) {
	got, err := UpsampleHoldBits([]byte{1, 0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{1, 1, 0, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bit %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestDownsampleInvertsUpsample(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(50)
		factor := 1 + r.Intn(8)
		x := randomVector(r, n)
		up, err := UpsampleHold(x, factor)
		if err != nil {
			return false
		}
		down, err := Downsample(up, factor, 0)
		if err != nil {
			return false
		}
		if len(down) != len(x) {
			return false
		}
		for i := range x {
			if down[i] != x[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDownsampleOffset(t *testing.T) {
	x := []complex128{0, 1, 2, 3, 4, 5}
	got, err := Downsample(x, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := []complex128{1, 3, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("sample %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestDownsampleOffsetPastEnd(t *testing.T) {
	got, err := Downsample([]complex128{1, 2}, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Errorf("got %v, want nil", got)
	}
}

func TestDownsampleNegativeOffsetRejected(t *testing.T) {
	// A negative offset used to be silently clamped to 0, hiding caller
	// bugs; it is now a typed error like a bad factor.
	if _, err := Downsample([]complex128{1, 2, 3}, 2, -4); !errors.Is(err, ErrBadOffset) {
		t.Fatalf("Downsample(offset=-4) err = %v, want ErrBadOffset", err)
	}
	if _, err := Downsample([]complex128{1, 2, 3}, 0, 1); !errors.Is(err, ErrBadFactor) {
		t.Fatalf("Downsample(factor=0) err = %v, want ErrBadFactor", err)
	}
	got, err := Downsample([]complex128{1, 2, 3}, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("got %v, want [1 3]", got)
	}
}

func TestDownsampleSumInto(t *testing.T) {
	x := []float64{1, 3, 5, 7, 100}
	got, err := DownsampleSumInto(nil, x, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{4, 12} // trailing partial block dropped
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("got %v, want %v", got, want)
	}
	// Reuse: a larger scratch is resliced, not reallocated.
	scratch := make([]float64, 8)
	got, err = DownsampleSumInto(scratch, x, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 116 || &got[0] != &scratch[0] {
		t.Errorf("scratch reuse: got %v (shared=%v)", got, len(got) > 0 && &got[0] == &scratch[0])
	}
	if _, err := DownsampleSumInto(nil, x, 0); !errors.Is(err, ErrBadFactor) {
		t.Fatalf("factor 0: err = %v, want ErrBadFactor", err)
	}
}

func TestDownsampleMean(t *testing.T) {
	x := []float64{1, 3, 5, 7, 100}
	got, err := DownsampleMean(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 6} // trailing partial block dropped
	if len(got) != len(want) {
		t.Fatalf("len %d, want %d", len(got), len(want))
	}
	for i := range want {
		if !almostEqual(got[i], want[i], floatTol) {
			t.Errorf("block %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestFractionalDelayIntegerMatchesShift(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	x := randomVector(r, 30)
	fd := FractionalDelay(x, 4)
	si := ShiftInt(x, 4)
	for i := range x {
		if !complexAlmostEqual(fd[i], si[i], 1e-12) {
			t.Fatalf("sample %d: %v vs %v", i, fd[i], si[i])
		}
	}
}

func TestFractionalDelayZero(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	x := randomVector(r, 10)
	got := FractionalDelay(x, 0)
	for i := range x {
		if got[i] != x[i] {
			t.Fatal("zero delay must be identity")
		}
	}
	// Must be a copy, not an alias.
	got[0] = 123
	if x[0] == 123 {
		t.Fatal("FractionalDelay must not alias its input")
	}
}

func TestFractionalDelayHalfSample(t *testing.T) {
	x := []complex128{0, 2, 4, 2, 0}
	got := FractionalDelay(x, 0.5)
	// Sample i is the average of x[i] and x[i-1].
	want := []complex128{0, 1, 3, 3, 1}
	for i := range want {
		if !complexAlmostEqual(got[i], want[i], 1e-12) {
			t.Errorf("sample %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestShiftIntAdvance(t *testing.T) {
	x := []complex128{1, 2, 3, 4}
	got := ShiftInt(x, -2)
	want := []complex128{3, 4, 0, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("sample %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestShiftIntRoundTripEnergyProperty(t *testing.T) {
	// Delaying then advancing loses only the samples pushed off the end.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 10 + r.Intn(40)
		d := r.Intn(5)
		x := randomVector(r, n)
		back := ShiftInt(ShiftInt(x, d), -d)
		for i := 0; i < n-d; i++ {
			if back[i] != x[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
