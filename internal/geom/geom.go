// Package geom models the planar deployment geometry of the CBMA testbed
// (Fig. 3 of the paper): a coordinate system with the excitation source at
// (−D, 0) and the receiver at (+D, 0), tags placed in a rectangular room,
// and placement utilities with minimum-separation constraints (the paper
// excludes tags closer than half a wavelength, §VII-C1).
package geom

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Point is a position in meters.
type Point struct {
	X, Y float64
}

// Distance returns the Euclidean distance between two points.
func (p Point) Distance(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.2f, %.2f)", p.X, p.Y) }

// Room is an axis-aligned rectangular deployment area.
type Room struct {
	// Width is the X extent in meters, Height the Y extent. The room is
	// centered on the origin to match the paper's coordinate system.
	Width, Height float64
}

// DefaultRoom is the paper's 4 m × 6 m office (§VII-A).
func DefaultRoom() Room { return Room{Width: 6, Height: 4} }

// Contains reports whether p lies inside the room.
func (r Room) Contains(p Point) bool {
	return math.Abs(p.X) <= r.Width/2 && math.Abs(p.Y) <= r.Height/2
}

// RandomPoint draws a uniformly distributed point inside the room.
func (r Room) RandomPoint(rng *rand.Rand) Point {
	return Point{
		X: (rng.Float64() - 0.5) * r.Width,
		Y: (rng.Float64() - 0.5) * r.Height,
	}
}

// Deployment is a concrete placement of the excitation source, receiver and
// tags.
type Deployment struct {
	Room Room
	// ES and RX are the excitation source and receiver positions; the
	// paper uses (−D, 0) and (+D, 0) with D = 50 cm.
	ES, RX Point
	// Tags holds one position per tag.
	Tags []Point
}

// ErrNoPlacement is returned when a placement satisfying the separation
// constraints cannot be found.
var ErrNoPlacement = errors.New("geom: cannot satisfy placement constraints")

// NewDeployment returns the paper's canonical geometry: ES at (−d, 0), RX
// at (+d, 0) inside the default room, with no tags placed yet.
func NewDeployment(d float64) Deployment {
	return Deployment{
		Room: DefaultRoom(),
		ES:   Point{X: -d},
		RX:   Point{X: d},
	}
}

// PlaceTagsRandom places n tags uniformly at random inside the room such
// that every pair of tags is at least minSep meters apart and every tag is
// at least minSep from both ES and RX. It retries up to maxTries draws per
// tag before giving up with ErrNoPlacement.
func (d *Deployment) PlaceTagsRandom(rng *rand.Rand, n int, minSep float64) error {
	const maxTries = 1000
	tags := make([]Point, 0, n)
	for len(tags) < n {
		placed := false
		for try := 0; try < maxTries; try++ {
			p := d.Room.RandomPoint(rng)
			if p.Distance(d.ES) < minSep || p.Distance(d.RX) < minSep {
				continue
			}
			ok := true
			for _, q := range tags {
				if p.Distance(q) < minSep {
					ok = false
					break
				}
			}
			if ok {
				tags = append(tags, p)
				placed = true
				break
			}
		}
		if !placed {
			return fmt.Errorf("%w: placed %d of %d tags (minSep %.2f m)",
				ErrNoPlacement, len(tags), n, minSep)
		}
	}
	d.Tags = tags
	return nil
}

// PlaceTagsLine places n tags on the Y axis offset line x = atX, evenly
// spread between y = −span/2 and +span/2. Deterministic placements are used
// by the micro-benchmarks that sweep a single distance.
func (d *Deployment) PlaceTagsLine(n int, atX, span float64) {
	tags := make([]Point, n)
	for i := range tags {
		frac := 0.5
		if n > 1 {
			frac = float64(i) / float64(n-1)
		}
		tags[i] = Point{X: atX, Y: (frac - 0.5) * span}
	}
	d.Tags = tags
}

// Wavelength returns c/f in meters for carrier frequency f in Hz.
func Wavelength(freqHz float64) float64 {
	const c = 299_792_458.0
	if freqHz <= 0 {
		return math.Inf(1)
	}
	return c / freqHz
}

// MinPairDistance returns the smallest pairwise distance among the points,
// or +Inf for fewer than two points.
func MinPairDistance(pts []Point) float64 {
	min := math.Inf(1)
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			if d := pts[i].Distance(pts[j]); d < min {
				min = d
			}
		}
	}
	return min
}
