package geom

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointDistance(t *testing.T) {
	tests := []struct {
		p, q Point
		want float64
	}{
		{Point{0, 0}, Point{3, 4}, 5},
		{Point{1, 1}, Point{1, 1}, 0},
		{Point{-1, 0}, Point{1, 0}, 2},
	}
	for _, tc := range tests {
		if got := tc.p.Distance(tc.q); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%v.Distance(%v) = %v, want %v", tc.p, tc.q, got, tc.want)
		}
	}
}

func TestPointDistanceSymmetry(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		if math.IsNaN(ax) || math.IsNaN(ay) || math.IsNaN(bx) || math.IsNaN(by) ||
			math.IsInf(ax, 0) || math.IsInf(ay, 0) || math.IsInf(bx, 0) || math.IsInf(by, 0) {
			return true
		}
		a, b := Point{ax, ay}, Point{bx, by}
		return a.Distance(b) == b.Distance(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPointAddAndString(t *testing.T) {
	p := Point{1, 2}.Add(Point{3, -1})
	if p.X != 4 || p.Y != 1 {
		t.Errorf("Add = %v", p)
	}
	if got := (Point{1.234, -5.6}).String(); got != "(1.23, -5.60)" {
		t.Errorf("String = %q", got)
	}
}

func TestDefaultRoomMatchesPaper(t *testing.T) {
	r := DefaultRoom()
	if r.Width != 6 || r.Height != 4 {
		t.Errorf("default room %vx%v, want 6x4 (paper §VII-A)", r.Width, r.Height)
	}
}

func TestRoomContains(t *testing.T) {
	r := Room{Width: 6, Height: 4}
	if !r.Contains(Point{0, 0}) || !r.Contains(Point{3, 2}) || !r.Contains(Point{-3, -2}) {
		t.Error("interior/edge points must be contained")
	}
	if r.Contains(Point{3.1, 0}) || r.Contains(Point{0, 2.1}) {
		t.Error("exterior points must not be contained")
	}
}

func TestRandomPointStaysInside(t *testing.T) {
	r := Room{Width: 2, Height: 8}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		if p := r.RandomPoint(rng); !r.Contains(p) {
			t.Fatalf("draw %d left the room: %v", i, p)
		}
	}
}

func TestNewDeploymentGeometry(t *testing.T) {
	d := NewDeployment(0.5)
	if d.ES.X != -0.5 || d.RX.X != 0.5 || d.ES.Y != 0 || d.RX.Y != 0 {
		t.Errorf("ES %v RX %v, want (-0.5,0) and (0.5,0)", d.ES, d.RX)
	}
}

func TestPlaceTagsRandomRespectsSeparation(t *testing.T) {
	d := NewDeployment(0.5)
	rng := rand.New(rand.NewSource(2))
	const minSep = 0.3
	if err := d.PlaceTagsRandom(rng, 10, minSep); err != nil {
		t.Fatal(err)
	}
	if len(d.Tags) != 10 {
		t.Fatalf("placed %d tags", len(d.Tags))
	}
	if got := MinPairDistance(d.Tags); got < minSep {
		t.Errorf("min pair distance %v < %v", got, minSep)
	}
	for i, p := range d.Tags {
		if p.Distance(d.ES) < minSep || p.Distance(d.RX) < minSep {
			t.Errorf("tag %d too close to ES/RX", i)
		}
		if !d.Room.Contains(p) {
			t.Errorf("tag %d outside the room", i)
		}
	}
}

func TestPlaceTagsRandomImpossible(t *testing.T) {
	d := NewDeployment(0.5)
	d.Room = Room{Width: 0.2, Height: 0.2}
	rng := rand.New(rand.NewSource(3))
	err := d.PlaceTagsRandom(rng, 5, 10 /* impossible separation */)
	if !errors.Is(err, ErrNoPlacement) {
		t.Fatalf("got %v, want ErrNoPlacement", err)
	}
}

func TestPlaceTagsLine(t *testing.T) {
	d := NewDeployment(0.5)
	d.PlaceTagsLine(3, 1.5, 2)
	if len(d.Tags) != 3 {
		t.Fatalf("placed %d", len(d.Tags))
	}
	for i, p := range d.Tags {
		if p.X != 1.5 {
			t.Errorf("tag %d X = %v", i, p.X)
		}
	}
	if d.Tags[0].Y != -1 || d.Tags[1].Y != 0 || d.Tags[2].Y != 1 {
		t.Errorf("Y spread wrong: %v", d.Tags)
	}
	// Single tag centers on the line.
	d.PlaceTagsLine(1, 2, 4)
	if d.Tags[0].Y != 0 {
		t.Errorf("single tag Y = %v, want 0", d.Tags[0].Y)
	}
}

func TestWavelength(t *testing.T) {
	// 2 GHz carrier (paper §VI) → ≈ 15 cm.
	got := Wavelength(2e9)
	if math.Abs(got-0.1499) > 0.001 {
		t.Errorf("Wavelength(2GHz) = %v, want ≈0.15", got)
	}
	if !math.IsInf(Wavelength(0), 1) {
		t.Error("zero frequency must map to +Inf")
	}
}

func TestMinPairDistance(t *testing.T) {
	if got := MinPairDistance(nil); !math.IsInf(got, 1) {
		t.Errorf("empty: %v", got)
	}
	if got := MinPairDistance([]Point{{0, 0}}); !math.IsInf(got, 1) {
		t.Errorf("single: %v", got)
	}
	pts := []Point{{0, 0}, {0, 3}, {0, 1}}
	if got := MinPairDistance(pts); got != 1 {
		t.Errorf("got %v, want 1", got)
	}
}
