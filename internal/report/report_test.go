package report

import (
	"strings"
	"testing"

	"cbma/internal/sim"
)

func sampleSeries() []sim.Series {
	return []sim.Series{
		{Name: "2 tags", Points: []sim.Point{
			{X: 1, Metrics: sim.Metrics{FER: 0.01, PRR: 0.99}},
			{X: 2, Metrics: sim.Metrics{FER: 0.05, PRR: 0.95}},
		}},
		{Name: "3 tags", Points: []sim.Point{
			{X: 1, Metrics: sim.Metrics{FER: 0.02, PRR: 0.98}},
		}},
	}
}

func TestSeriesTable(t *testing.T) {
	out := SeriesTable("distance(m)", sampleSeries(), FER)
	if !strings.Contains(out, "2 tags") || !strings.Contains(out, "3 tags") {
		t.Errorf("missing headers:\n%s", out)
	}
	if !strings.Contains(out, "0.0100") {
		t.Errorf("missing value:\n%s", out)
	}
	// Ragged series render a dash.
	if !strings.Contains(out, "-") {
		t.Errorf("ragged cell not dashed:\n%s", out)
	}
	if got := SeriesTable("x", nil, FER); got != "(no data)\n" {
		t.Errorf("empty: %q", got)
	}
}

func TestMetricFns(t *testing.T) {
	m := sim.Metrics{FER: 0.25, PRR: 0.75}
	if FER(m) != 0.25 || PRR(m) != 0.75 {
		t.Error("metric extractors wrong")
	}
}

func TestPointsTable(t *testing.T) {
	pts := []sim.Point{
		{Label: "no interference", Metrics: sim.Metrics{PRR: 0.99}},
		{Label: "ofdm excitation", Metrics: sim.Metrics{PRR: 0.5}},
	}
	out := PointsTable(pts, PRR, "PRR")
	if !strings.Contains(out, "no interference") || !strings.Contains(out, "0.5000") {
		t.Errorf("bad table:\n%s", out)
	}
}

func TestPowerDiffTableSorted(t *testing.T) {
	rows := []sim.PowerDiffRow{
		{Case: "2", Difference: 0.6, ErrorRate: 0.2, SNR1: 8, SNR2: 4},
		{Case: "1", Difference: 0.05, ErrorRate: 0.003, SNR1: 5, SNR2: 5},
	}
	out := PowerDiffTable(rows)
	if strings.Index(out, "case") > strings.Index(out, "5.00%") {
		t.Errorf("header not first:\n%s", out)
	}
	if strings.Index(out, "5.00%") > strings.Index(out, "60.00%") {
		t.Errorf("rows not sorted by difference:\n%s", out)
	}
	// Input slice must not be reordered.
	if rows[0].Case != "2" {
		t.Error("input mutated")
	}
}

func TestCDFTable(t *testing.T) {
	out, err := CDFTable(
		[]string{"no control", "power control"},
		[][]float64{{0.1, 0.2, 0.3}, {0.01, 0.02, 0.03}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "no control") || !strings.Contains(out, "power control") {
		t.Errorf("missing rows:\n%s", out)
	}
	if _, err := CDFTable([]string{"x"}, [][]float64{nil}); err == nil {
		t.Error("empty samples must fail")
	}
}

func TestFieldHeatmap(t *testing.T) {
	grid := [][]float64{
		{-80, -70},
		{-60, -40},
	}
	out := FieldHeatmap(grid)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines: %v", lines)
	}
	// Strongest cell (-40, top row rendered first because it has larger j)
	// must be '#', weakest '.'.
	if !strings.Contains(lines[0], "#") {
		t.Errorf("top row missing strongest shade: %q", lines[0])
	}
	if !strings.Contains(lines[1], ".") {
		t.Errorf("bottom row missing weakest shade: %q", lines[1])
	}
	if FieldHeatmap(nil) != "(empty field)\n" {
		t.Error("empty grid")
	}
	// Flat field must not divide by zero.
	flat := FieldHeatmap([][]float64{{-50, -50}})
	if !strings.Contains(flat, "..") {
		t.Errorf("flat field: %q", flat)
	}
}

func TestUserDetectionRender(t *testing.T) {
	out := UserDetection(sim.UserDetectionResult{Trials: 100, Correct: 99, Accuracy: 0.99})
	if !strings.Contains(out, "99/100") || !strings.Contains(out, "0.9900") {
		t.Errorf("bad render: %q", out)
	}
}

func TestHeadlineRender(t *testing.T) {
	out := Headline(800e3, 70e3, 8e6, 10)
	if !strings.Contains(out, "8.00 Mbps") || !strings.Contains(out, "11.4×") {
		t.Errorf("bad render: %q", out)
	}
	zero := Headline(800e3, 0, 8e6, 10)
	if strings.Contains(zero, "gain") {
		t.Errorf("zero TDMA must omit gain: %q", zero)
	}
}
