// Package report renders experiment results as the aligned text tables and
// series the paper's figures show — shared by cmd/cbmabench and the
// bench_test.go harness so both emit identical rows.
package report

import (
	"fmt"
	"sort"
	"strings"

	"cbma/internal/sim"
	"cbma/internal/stats"
)

// MetricFn extracts the plotted quantity from a point's metrics.
type MetricFn func(sim.Metrics) float64

// FER extracts the frame error rate (most figures).
func FER(m sim.Metrics) float64 { return m.FER }

// PRR extracts the packet reception rate (Fig. 12).
func PRR(m sim.Metrics) float64 { return m.PRR }

// DetectionFER extracts the frame-detection error rate (the Fig. 8 and
// Fig. 9(a) micro benchmarks).
func DetectionFER(m sim.Metrics) float64 { return m.DetectionFER }

// SeriesTable renders sweep results: one row per X value, one column per
// series.
//
//	distance(m)   2 tags   3 tags   4 tags
//	      0.10    0.0000   0.0100   0.0150
func SeriesTable(xLabel string, series []sim.Series, f MetricFn) string {
	if len(series) == 0 {
		return "(no data)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%14s", xLabel)
	for _, s := range series {
		fmt.Fprintf(&b, "  %12s", s.Name)
	}
	b.WriteByte('\n')
	for i := range series[0].Points {
		fmt.Fprintf(&b, "%14.4g", series[0].Points[i].X)
		for _, s := range series {
			if i < len(s.Points) {
				fmt.Fprintf(&b, "  %12.4f", f(s.Points[i].Metrics))
			} else {
				fmt.Fprintf(&b, "  %12s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// PointsTable renders labelled single points (Fig. 12's conditions).
func PointsTable(points []sim.Point, f MetricFn, metricName string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-26s %10s\n", "condition", metricName)
	for _, p := range points {
		fmt.Fprintf(&b, "%-26s %10.4f\n", p.Label, f(p.Metrics))
	}
	return b.String()
}

// PowerDiffTable renders Table II rows sorted by power difference.
func PowerDiffTable(rows []sim.PowerDiffRow) string {
	sorted := append([]sim.PowerDiffRow(nil), rows...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Difference < sorted[j].Difference })
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %9s %9s %11s %10s\n", "case", "SNR1(dB)", "SNR2(dB)", "difference", "error rate")
	for _, r := range sorted {
		fmt.Fprintf(&b, "%-6s %9.1f %9.1f %10.2f%% %10.4f\n",
			r.Case, r.SNR1, r.SNR2, 100*r.Difference, r.ErrorRate)
	}
	return b.String()
}

// CDFTable renders named sample sets as quantiles of their empirical CDFs —
// the textual form of Fig. 10.
func CDFTable(names []string, sampleSets [][]float64) (string, error) {
	quantiles := []float64{0.1, 0.25, 0.5, 0.75, 0.9, 1.0}
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s", "P(FER <= x) quantile x at:")
	for _, q := range quantiles {
		fmt.Fprintf(&b, " %8.0f%%", q*100)
	}
	b.WriteByte('\n')
	for i, name := range names {
		c, err := stats.NewCDF(sampleSets[i])
		if err != nil {
			return "", fmt.Errorf("report: CDF %q: %w", name, err)
		}
		fmt.Fprintf(&b, "%-28s", name)
		for _, q := range quantiles {
			fmt.Fprintf(&b, " %9.4f", c.Quantile(q))
		}
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// FieldHeatmap renders a dBm grid (Fig. 5) as a coarse ASCII heat map, one
// character per cell from weakest (.) to strongest (#).
func FieldHeatmap(grid [][]float64) string {
	if len(grid) == 0 || len(grid[0]) == 0 {
		return "(empty field)\n"
	}
	min, max := grid[0][0], grid[0][0]
	for _, row := range grid {
		for _, v := range row {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
	}
	shades := []byte(".:-=+*%#")
	var b strings.Builder
	// Render top row (largest Y) first so the map is oriented like Fig. 5.
	for j := len(grid) - 1; j >= 0; j-- {
		for _, v := range grid[j] {
			idx := 0
			if max > min {
				idx = int(float64(len(shades)-1) * (v - min) / (max - min))
			}
			b.WriteByte(shades[idx])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "(scale: '.' = %.1f dBm … '#' = %.1f dBm)\n", min, max)
	return b.String()
}

// UserDetection renders the §VII-B2 result.
func UserDetection(res sim.UserDetectionResult) string {
	return fmt.Sprintf("user detection: %d/%d trials exact (accuracy %.4f; paper reports 0.999)\n",
		res.Correct, res.Trials, res.Accuracy)
}

// Headline renders the throughput comparison.
func Headline(cbmaGoodput, tdmaGoodput, rawAggregate float64, tags int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d-tag CBMA raw aggregate rate: %.2f Mbps (paper headline: 8 Mbps)\n",
		tags, rawAggregate/1e6)
	fmt.Fprintf(&b, "goodput: CBMA %.1f kbps vs single-tag TDMA %.1f kbps",
		cbmaGoodput/1e3, tdmaGoodput/1e3)
	if tdmaGoodput > 0 {
		fmt.Fprintf(&b, "  (gain %.1f×, paper claims >10×)", cbmaGoodput/tdmaGoodput)
	}
	b.WriteByte('\n')
	return b.String()
}
