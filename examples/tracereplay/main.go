// Command tracereplay demonstrates the paper's §VIII-C trace-driven
// emulation methodology: a live 5-tag run is captured — the realized
// channel gains and per-tag timing errors of every collision — and the
// exact same collisions are then replayed through two receiver variants,
// so the comparison is free of channel luck.
//
//	go run ./examples/tracereplay
package main

import (
	"bytes"
	"fmt"
	"os"

	"cbma"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tracereplay:", err)
		os.Exit(1)
	}
}

func run() error {
	scn := cbma.DefaultScenario()
	scn.NumTags = 5
	scn.PayloadBytes = 16
	scn.Packets = 150
	scn.TagLineDistance = 2.5 // marginal links: the interesting regime

	// Capture a live run with the paper's plain receiver.
	live, err := cbma.NewEngine(scn)
	if err != nil {
		return err
	}
	rec := cbma.NewTraceRecorder("5 tags at 2.5 m, Gold-31")
	live.RecordTo(rec)
	plain, err := live.Run()
	if err != nil {
		return err
	}

	// Serialize and reload, as a field capture would be.
	var buf bytes.Buffer
	if err := rec.Trace().Write(&buf); err != nil {
		return err
	}
	serialized := buf.Len()
	captured, err := cbma.ReadTrace(&buf)
	if err != nil {
		return err
	}
	fmt.Printf("captured %d collision rounds (%d bytes serialized)\n",
		len(captured.Rounds), serialized)

	// Replay the identical collisions through receiver variants.
	replay := func(label string, mod func(*cbma.Scenario)) error {
		v := scn
		mod(&v)
		engine, err := cbma.NewEngine(v)
		if err != nil {
			return err
		}
		engine.ReplayFrom(cbma.NewTracePlayer(captured))
		m, err := engine.Run()
		if err != nil {
			return err
		}
		fmt.Printf("  %-28s FER %.4f  delivered %d/%d\n",
			label, m.FER, m.FramesDelivered, m.FramesSent)
		return nil
	}
	fmt.Printf("  %-28s FER %.4f  delivered %d/%d   (the recorded run)\n",
		"plain receiver (live)", plain.FER, plain.FramesDelivered, plain.FramesSent)
	if err := replay("plain receiver (replayed)", func(*cbma.Scenario) {}); err != nil {
		return err
	}
	return replay("SIC receiver (same trace)", func(s *cbma.Scenario) { s.SIC = true })
}
