// Command quickstart is the smallest end-to-end CBMA run: four tags
// backscatter concurrently one meter from the receiver using Gold-31
// codes, and the receiver decodes the collision.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"cbma"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	scn := cbma.DefaultScenario()
	scn.NumTags = 4
	scn.PayloadBytes = 16
	scn.Packets = 200

	engine, err := cbma.NewEngine(scn)
	if err != nil {
		return err
	}
	m, err := engine.Run()
	if err != nil {
		return err
	}

	fmt.Println("CBMA quickstart — 4 concurrent tags, Gold-31 codes, 1 m range")
	fmt.Printf("  frames sent        %d\n", m.FramesSent)
	fmt.Printf("  frames delivered   %d\n", m.FramesDelivered)
	fmt.Printf("  frame error rate   %.3f\n", m.FER)
	fmt.Printf("  goodput            %.1f kbps\n", m.GoodputBps/1e3)
	fmt.Printf("  raw aggregate rate %.2f Mbps\n", m.RawAggregateBps/1e6)
	return nil
}
