// Command interference reproduces the coexistence study of Fig. 12: the
// same 3-tag deployment run under a clean channel, alongside bursty WiFi
// traffic, alongside a frequency-hopping Bluetooth link, and with an
// intermittent OFDM excitation source. CBMA shrugs off WiFi and Bluetooth
// (their channels are mostly idle or out of band) but suffers when the
// exciter itself is intermittent.
//
//	go run ./examples/interference
package main

import (
	"fmt"
	"os"

	"cbma"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "interference:", err)
		os.Exit(1)
	}
}

func run() error {
	scn := cbma.DefaultScenario()
	scn.NumTags = 3
	scn.PayloadBytes = 16
	scn.Packets = 150

	pts, err := cbma.WorkingConditions(scn)
	if err != nil {
		return err
	}
	fmt.Println("Coexistence study — correct packet reception rate (Fig. 12)")
	for _, p := range pts {
		fmt.Printf("  %-24s PRR %.3f\n", p.Label, p.Metrics.PRR)
	}

	// The same knobs are available directly for custom scenarios:
	custom := scn
	custom.Interferers = []cbma.Interferer{
		&cbma.WiFiInterferer{PowerDBm: -50, DutyCycle: 0.6},
		&cbma.BluetoothInterferer{PowerDBm: -50},
	}
	engine, err := cbma.NewEngine(custom)
	if err != nil {
		return err
	}
	m, err := engine.Run()
	if err != nil {
		return err
	}
	fmt.Printf("\nCustom heavy-interference run (60%% WiFi duty + Bluetooth): PRR %.3f\n", m.PRR)
	return nil
}
