// Command powercontrol demonstrates the paper's central mechanism: a
// near–far deployment (one tag close to the receiver, one far) is nearly
// undecodable for the far tag until the tags adapt their antenna
// impedances via the ACK-driven Algorithm 1 loop, and improves further
// when the §V-C node-selection scheme re-places tags that stay bad.
//
//	go run ./examples/powercontrol
package main

import (
	"fmt"
	"os"

	"cbma"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "powercontrol:", err)
		os.Exit(1)
	}
}

func run() error {
	base := cbma.DefaultScenario()
	base.NumTags = 3
	base.PayloadBytes = 16
	base.Packets = 200
	// A deliberately unfair placement: tag 0 sits almost on top of the
	// receiver while tags 1 and 2 are several times farther away, and all
	// three boot in arbitrary impedance states — the situation the
	// ACK-driven controller is built to repair.
	base.Deployment = cbma.NewDeployment(0.5)
	base.Deployment.Tags = []cbma.Position{
		{X: 0.35, Y: 0.15},
		{X: -1.2, Y: 0.7},
		{X: -1.4, Y: -0.5},
	}
	base.RandomInitialImpedance = true

	fmt.Println("Near–far rescue — 3 tags, one hugging the receiver")

	run := func(label string, pc, ns bool) error {
		scn := base
		scn.PowerControl = pc
		sys, err := cbma.NewSystem(cbma.SystemConfig{
			Scenario:           scn,
			NodeSelection:      ns,
			CandidatePositions: 60,
		})
		if err != nil {
			return err
		}
		rep, err := sys.Run()
		if err != nil {
			return err
		}
		fmt.Printf("  %-28s FER %.3f  goodput %7.1f kbps", label, rep.Final.FER,
			rep.Final.GoodputBps/1e3)
		if ns {
			fmt.Printf("  (%d tags re-placed)", rep.Replacements)
		}
		fmt.Println()
		return nil
	}

	if err := run("no control", false, false); err != nil {
		return err
	}
	if err := run("power control", true, false); err != nil {
		return err
	}
	if err := run("power control + selection", true, true); err != nil {
		return err
	}

	// Show the impedance ladder the controller climbs.
	fmt.Println("\n  tag impedance bank (|ΔΓ| per state, from internal/tag DefaultBank):")
	fmt.Println("    state 1: 1 pF + ESR   ≈ 0.55   (weakest backscatter)")
	fmt.Println("    state 2: 3 pF + ESR   ≈ 0.65")
	fmt.Println("    state 3: 2 nH + ESR   ≈ 0.75")
	fmt.Println("    state 4: open circuit = 1.00   (strongest)")
	return nil
}
