// Command smarthome recreates the paper's Fig. 1 motivating scenario: ten
// battery-free sensor tags scattered through a room, all reporting
// concurrently through CBMA, compared against polling them one at a time
// (single-tag TDMA — what today's backscatter systems do). It prints the
// throughput gain, which the paper reports as more than 10×.
//
//	go run ./examples/smarthome
package main

import (
	"fmt"
	"os"

	"cbma"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "smarthome:", err)
		os.Exit(1)
	}
}

func run() error {
	scn := cbma.DefaultScenario()
	scn.NumTags = 10
	scn.Family = cbma.Family2NC // the code family the paper adopts (§VII-B3)
	scn.PayloadBytes = 16
	scn.Packets = 150

	// Scatter the sensors around the radios like Fig. 1's smart home,
	// inside the band where every link is individually reliable, so the
	// comparison isolates what concurrency buys.
	scn.Deployment = cbma.NewDeployment(0.5)
	scn.Deployment.Tags = []cbma.Position{
		{X: 0.0, Y: 0.5}, {X: 0.0, Y: -0.5}, {X: 0.3, Y: 0.4},
		{X: 0.3, Y: -0.4}, {X: -0.3, Y: 0.4}, {X: -0.3, Y: -0.4},
		{X: 0.6, Y: 0.25}, {X: 0.6, Y: -0.25}, {X: -0.15, Y: 0.7},
		{X: -0.15, Y: -0.7},
	}

	concurrent, err := cbma.RunCBMABaseline(scn)
	if err != nil {
		return err
	}
	polled, err := cbma.TDMA(scn, cbma.TDMAConfig{Rounds: scn.Packets})
	if err != nil {
		return err
	}

	fmt.Println("Smart-home scenario — 10 sensor tags, 2NC codes")
	fmt.Printf("  CBMA (concurrent):  FER %.3f, goodput %8.1f kbps, airtime %.3f s\n",
		concurrent.FER, concurrent.GoodputBps/1e3, concurrent.AirtimeSeconds)
	fmt.Printf("  TDMA (one-by-one):  FER %.3f, goodput %8.1f kbps, airtime %.3f s\n",
		polled.FER, polled.GoodputBps/1e3, polled.AirtimeSeconds)
	if polled.GoodputBps > 0 {
		fmt.Printf("  throughput gain:    %.1f× (paper: >10×)\n",
			concurrent.GoodputBps/polled.GoodputBps)
	}

	// The headline "multi-tag bit rate": aggregate on-air symbol rate.
	engine, err := cbma.NewEngine(scn)
	if err != nil {
		return err
	}
	m, err := engine.Run()
	if err != nil {
		return err
	}
	fmt.Printf("  raw aggregate rate: %.2f Mbps (paper headline: 8 Mbps for 10 tags)\n",
		m.RawAggregateBps/1e6)

	// Extension: the successive-interference-cancellation receiver
	// (DESIGN.md, rx.Config.SIC) recovers most near-far losses.
	sic := scn
	sic.SIC = true
	engineSIC, err := cbma.NewEngine(sic)
	if err != nil {
		return err
	}
	ms, err := engineSIC.Run()
	if err != nil {
		return err
	}
	fmt.Printf("  with SIC receiver:  FER %.3f, goodput %8.1f kbps (extension beyond the paper)\n",
		ms.FER, ms.GoodputBps/1e3)
	return nil
}
