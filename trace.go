package cbma

import (
	"io"

	"cbma/internal/trace"
)

// Trace-driven emulation (the paper's §VIII-C methodology): record the
// realized channel gains and clock offsets of a run, then replay the exact
// collisions into other receiver variants. See Engine.RecordTo and
// Engine.ReplayFrom.
type (
	// Trace is a recorded sequence of collision rounds.
	Trace = trace.Trace
	// TraceRecorder accumulates rounds during a live run.
	TraceRecorder = trace.Recorder
	// TracePlayer replays a trace round by round.
	TracePlayer = trace.Player
	// TraceRound and TraceSample are the recorded per-round/per-tag data.
	TraceRound  = trace.Round
	TraceSample = trace.TagSample
)

// NewTraceRecorder returns an empty recorder with the given metadata.
func NewTraceRecorder(meta string) *TraceRecorder { return trace.NewRecorder(meta) }

// NewTracePlayer wraps a trace for replay.
func NewTracePlayer(t *Trace) *TracePlayer { return trace.NewPlayer(t) }

// ReadTrace parses a trace serialized by Trace.Write.
func ReadTrace(r io.Reader) (*Trace, error) { return trace.Read(r) }
