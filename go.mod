module cbma

go 1.22
