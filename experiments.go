package cbma

import (
	"context"

	"cbma/internal/core"
	"cbma/internal/fault"
	"cbma/internal/sim"
)

// Fault-injection configuration and accounting (see internal/fault and the
// DESIGN.md "Fault model & resilience semantics" section).
type (
	// FaultProfile declares per-layer fault intensities; assign a pointer to
	// Scenario.Fault to arm the injection layer.
	FaultProfile = fault.Profile
	// FaultCounters is the degradation ledger of a run (Metrics.Faults).
	FaultCounters = fault.Counters
	// PointError and CampaignError carry per-point campaign failures
	// alongside the surviving points' metrics.
	PointError    = sim.PointError
	CampaignError = sim.CampaignError
)

// UserDetectionResult summarizes the §VII-B2 user-detection experiment.
type UserDetectionResult = sim.UserDetectionResult

// PowerDiffRow is one row of Table II.
type PowerDiffRow = sim.PowerDiffRow

// Experiment condition labels for WorkingConditions (Fig. 12).
const (
	CondClean     = sim.CondClean
	CondWiFi      = sim.CondWiFi
	CondBluetooth = sim.CondBluetooth
	CondOFDM      = sim.CondOFDM
)

// CampaignOpts configures RunCampaign.
type CampaignOpts = sim.CampaignOpts

// RunCampaign runs one engine per scenario, parallelizing across points
// and — when the worker budget exceeds the point count — across each
// point's steady-state rounds. Results are indexed like points and are
// independent of the budget (see Scenario.Workers for the per-engine
// reproducibility contract).
func RunCampaign(points []Scenario, opts CampaignOpts) ([]Metrics, error) {
	return sim.RunCampaign(points, opts)
}

// RunCampaignContext is RunCampaign with cooperative cancellation and
// resilient point execution: every point runs regardless of other points'
// failures, failed points report through a *CampaignError while healthy
// points keep their metrics, and cancellation returns the partial results
// collected so far (see sim.RunCampaignContext).
func RunCampaignContext(ctx context.Context, points []Scenario, opts CampaignOpts) ([]Metrics, error) {
	return sim.RunCampaignContext(ctx, points, opts)
}

// DeriveSeed deterministically derives a child scenario seed from a base
// seed and a sequence of labels (experiment identifier, point index, …).
// Distinct label sequences give independent seeds, which is what per-point
// seeds in a sweep need — additive seed arithmetic collides.
func DeriveSeed(seed int64, labels ...uint64) int64 {
	return sim.DeriveSeed(seed, labels...)
}

// SweepDistance reproduces Fig. 8(a): FER versus tag-to-RX distance.
func SweepDistance(base Scenario, distances []float64, tagCounts []int) ([]Series, error) {
	return sim.SweepDistance(base, distances, tagCounts)
}

// SweepTxPower reproduces Fig. 8(b): FER versus excitation transmit power.
func SweepTxPower(base Scenario, powersDBm []float64, tagCounts []int) ([]Series, error) {
	return sim.SweepTxPower(base, powersDBm, tagCounts)
}

// SweepPreamble reproduces Fig. 8(c): FER versus preamble length.
func SweepPreamble(base Scenario, preambleBits []int, tagCounts []int) ([]Series, error) {
	return sim.SweepPreamble(base, preambleBits, tagCounts)
}

// SweepBitrate reproduces Fig. 9(a): FER versus on-air bit rate.
func SweepBitrate(base Scenario, ratesHz []float64, tagCounts []int) ([]Series, error) {
	return sim.SweepBitrate(base, ratesHz, tagCounts)
}

// SweepCodes reproduces Fig. 9(b): Gold versus 2NC error rates by tag count.
func SweepCodes(base Scenario, tagCounts []int) ([]Series, error) {
	return sim.SweepCodes(base, tagCounts)
}

// SweepPowerControl reproduces Fig. 9(c): error rate with and without the
// Algorithm 1 loop over random placements.
func SweepPowerControl(base Scenario, tagCounts []int, groups int) ([]Series, error) {
	return sim.SweepPowerControl(base, tagCounts, groups)
}

// UserDetection reproduces the §VII-B2 experiment (10-tag group, random
// active subsets; paper reports 99.9% accuracy).
func UserDetection(base Scenario, groupSize, trials int) (UserDetectionResult, error) {
	return sim.UserDetection(base, groupSize, trials)
}

// SweepAsync reproduces Fig. 11: error rate versus tag-2 clock delay.
func SweepAsync(base Scenario, delaysChips []float64) (Series, error) {
	return sim.SweepAsync(base, delaysChips)
}

// WorkingConditions reproduces Fig. 12: packet reception rate under clean,
// WiFi-interference, Bluetooth-interference and OFDM-excitation conditions.
func WorkingConditions(base Scenario) ([]Point, error) {
	return sim.WorkingConditions(base)
}

// PowerDifferenceTable reproduces Table II: two-tag collisions relating
// received-power difference to error rate.
func PowerDifferenceTable(base Scenario, pairs int) ([]PowerDiffRow, error) {
	return sim.PowerDifferenceTable(base, pairs)
}

// DeploymentStudy reproduces Fig. 10: per-group FER samples under no
// control, power control, and power control plus node selection, for CDF
// plotting.
func DeploymentStudy(base Scenario, groups int) (none, pc, pcns []float64, err error) {
	return core.DeploymentStudy(base, groups)
}

// FaultSweep measures error rate versus fault intensity: mod sets one knob
// of the fault profile per rate, and every point runs under the same
// derived seed (common random numbers) so the degradation curve is smooth
// and monotone at modest packet counts.
func FaultSweep(ctx context.Context, base Scenario, name string, rates []float64, mod func(*FaultProfile, float64)) (Series, error) {
	return sim.FaultSweep(ctx, base, name, rates, mod)
}

// FaultSweepAckLoss sweeps the feedback ACK-loss probability — error rate
// versus downlink loss rate through the Algorithm 1 feedback loop.
func FaultSweepAckLoss(ctx context.Context, base Scenario, rates []float64) (Series, error) {
	return sim.FaultSweepAckLoss(ctx, base, rates)
}

// FaultSweepEnergyOutage sweeps the per-tag mid-frame energy-outage
// probability.
func FaultSweepEnergyOutage(ctx context.Context, base Scenario, rates []float64) (Series, error) {
	return sim.FaultSweepEnergyOutage(ctx, base, rates)
}
