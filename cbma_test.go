package cbma_test

import (
	"testing"

	"cbma"
)

// These tests exercise the public facade the way a downstream user would —
// everything here goes through the cbma package only.

func fastScenario() cbma.Scenario {
	scn := cbma.DefaultScenario()
	scn.PayloadBytes = 8
	scn.Packets = 20
	return scn
}

func TestQuickstartFlow(t *testing.T) {
	scn := fastScenario()
	scn.NumTags = 4
	engine, err := cbma.NewEngine(scn)
	if err != nil {
		t.Fatal(err)
	}
	m, err := engine.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.FramesSent != 4*scn.Packets {
		t.Errorf("sent %d", m.FramesSent)
	}
	if m.FER > 0.2 {
		t.Errorf("FER %v", m.FER)
	}
}

func TestSystemFlow(t *testing.T) {
	sys, err := cbma.NewSystem(cbma.SystemConfig{Scenario: fastScenario()})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Final.FramesSent == 0 {
		t.Error("system run sent nothing")
	}
}

func TestCodeSetConstruction(t *testing.T) {
	for _, fam := range []cbma.CodeFamily{cbma.FamilyGold, cbma.Family2NC, cbma.FamilyWalsh, cbma.FamilyKasami} {
		set, err := cbma.NewCodeSet(fam, 5, 0)
		if err != nil {
			t.Fatalf("%v: %v", fam, err)
		}
		if set.Size() != 5 {
			t.Errorf("%v: size %d", fam, set.Size())
		}
	}
}

func TestFriisFieldPublic(t *testing.T) {
	field, err := cbma.FriisField(cbma.DefaultChannel(), cbma.NewDeployment(0.5), 1, 10, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(field) != 6 || len(field[0]) != 10 {
		t.Fatalf("grid %dx%d", len(field), len(field[0]))
	}
}

func TestBaselinesPublic(t *testing.T) {
	scn := fastScenario()
	scn.Packets = 5
	td, err := cbma.TDMA(scn, cbma.TDMAConfig{Rounds: 3})
	if err != nil {
		t.Fatal(err)
	}
	if td.Scheme != "tdma" {
		t.Errorf("scheme %q", td.Scheme)
	}
	fs, err := cbma.FSA(8, cbma.FSAConfig{FrameSlots: 8, Frames: 20})
	if err != nil {
		t.Fatal(err)
	}
	if fs.FramesSent != 160 {
		t.Errorf("fsa sent %d", fs.FramesSent)
	}
	fd, err := cbma.FDMA(8, cbma.FDMAConfig{Channels: 4, Frames: 10})
	if err != nil {
		t.Fatal(err)
	}
	if fd.Scheme != "fdma" {
		t.Errorf("scheme %q", fd.Scheme)
	}
	if len(cbma.Table1()) == 0 {
		t.Error("empty Table 1")
	}
	row := cbma.CBMARow(8e6, 10, 5)
	if row.Tags != 10 {
		t.Errorf("row %+v", row)
	}
}

func TestExperimentFacades(t *testing.T) {
	scn := fastScenario()
	scn.Packets = 10
	if _, err := cbma.SweepDistance(scn, []float64{1}, []int{2}); err != nil {
		t.Error(err)
	}
	if _, err := cbma.SweepCodes(scn, []int{2}); err != nil {
		t.Error(err)
	}
	if _, err := cbma.WorkingConditions(scn); err != nil {
		t.Error(err)
	}
	res, err := cbma.UserDetection(scn, 4, 10)
	if err != nil {
		t.Error(err)
	}
	if res.Trials != 10 {
		t.Errorf("trials %d", res.Trials)
	}
	if _, err := cbma.PowerDifferenceTable(scn, 2); err != nil {
		t.Error(err)
	}
	if _, err := cbma.SweepAsync(scn, []float64{0}); err != nil {
		t.Error(err)
	}
	none, pc, pcns, err := cbma.DeploymentStudy(scn, 2)
	if err != nil {
		t.Error(err)
	}
	if len(none) != 2 || len(pc) != 2 || len(pcns) != 2 {
		t.Errorf("study samples %d/%d/%d", len(none), len(pc), len(pcns))
	}
}
