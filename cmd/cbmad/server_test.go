package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"cbma/internal/obs"
	"cbma/internal/serve/batch"
	"cbma/internal/serve/core"
	"cbma/internal/sim"
)

// countingRunner wraps a Runner and counts executed points, so the e2e
// test can prove a cache hit skipped execution on the serving path.
type countingRunner struct {
	inner  core.Runner
	points atomic.Int64
}

func (c *countingRunner) Run(ctx context.Context, points []sim.Scenario, opts sim.CampaignOpts) ([]sim.Metrics, error) {
	c.points.Add(int64(len(points)))
	return c.inner.Run(ctx, points, opts)
}

// testDaemon is an in-process cbmad over httptest: real service, real
// batcher, real HTTP mux — only the listener is synthetic.
type testDaemon struct {
	ts     *httptest.Server
	srv    *server
	runner *countingRunner
	o      *obs.Observer
	b      *batch.Batcher
}

func startDaemon(t *testing.T) *testDaemon {
	t.Helper()
	runner := &countingRunner{inner: core.CampaignRunner{}}
	o := obs.New(obs.Config{Clock: obs.SystemClock()})
	svc := &core.Service{Runner: runner, Store: core.NewMemoryStore(0), Obs: o}
	b := batch.New(batch.Config{
		Service: svc,
		MaxWait: 10 * time.Millisecond, // keep the e2e test snappy
		Obs:     o,
	})
	ctx, cancel := context.WithCancel(context.Background())
	srv := newServer(ctx, b, o)
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(func() {
		ts.Close()
		drainCtx, done := context.WithTimeout(context.Background(), 10*time.Second)
		defer done()
		_ = b.Close(drainCtx)
		cancel()
		srv.drain() // collect finishJob goroutines before the leak check runs
		http.DefaultClient.CloseIdleConnections()
	})
	return &testDaemon{ts: ts, srv: srv, runner: runner, o: o, b: b}
}

func (d *testDaemon) submit(t *testing.T, body string) jobInfo {
	t.Helper()
	resp, err := http.Post(d.ts.URL+"/v1/campaigns", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		t.Fatalf("submit: status %d: %s", resp.StatusCode, buf.String())
	}
	var inf jobInfo
	if err := json.NewDecoder(resp.Body).Decode(&inf); err != nil {
		t.Fatal(err)
	}
	return inf
}

// wait polls the status endpoint until the job leaves "pending".
func (d *testDaemon) wait(t *testing.T, id string) jobInfo {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(d.ts.URL + "/v1/campaigns/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var inf jobInfo
		err = json.NewDecoder(resp.Body).Decode(&inf)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if inf.Status != "pending" {
			return inf
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return jobInfo{}
}

func quickScenario(seed int64) sim.Scenario {
	scn := sim.DefaultScenario()
	scn.Seed = seed
	scn.Packets = 20
	return scn
}

func scenarioJSON(t *testing.T, scns ...sim.Scenario) string {
	t.Helper()
	b, err := json.Marshal(map[string]any{"what": "e2e", "points": scns})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// The acceptance criterion end to end: metrics served by cbmad over HTTP
// are bit-identical to a direct sim.RunCampaign of the same scenarios, and
// a second identical submission is answered from the cache — zero
// additional executed points, every result flagged Cached, and the
// serve.cache.hits counter advanced.
func TestDaemonServesBitIdenticalAndCaches(t *testing.T) {
	d := startDaemon(t)
	points := []sim.Scenario{quickScenario(7), quickScenario(8)}

	direct, err := sim.RunCampaign(points, sim.CampaignOpts{What: "direct"})
	if err != nil {
		t.Fatal(err)
	}

	first := d.wait(t, d.submit(t, scenarioJSON(t, points...)).ID)
	if first.Status != "done" {
		t.Fatalf("first job status = %q (%s)", first.Status, first.Error)
	}
	if len(first.Results) != len(points) {
		t.Fatalf("got %d results, want %d", len(first.Results), len(points))
	}
	for i, r := range first.Results {
		if r.Cached {
			t.Errorf("point %d cached on first submission", i)
		}
		directJSON, err := json.Marshal(direct[i])
		if err != nil {
			t.Fatal(err)
		}
		servedJSON, err := json.Marshal(r.Metrics)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(directJSON, servedJSON) {
			t.Errorf("point %d: served metrics differ from direct run\ndirect: %s\nserved: %s", i, directJSON, servedJSON)
		}
	}
	if got := d.runner.points.Load(); got != int64(len(points)) {
		t.Fatalf("first submission executed %d points, want %d", got, len(points))
	}
	hitsBefore := d.o.Counter("serve.cache.hits").Value()

	second := d.wait(t, d.submit(t, scenarioJSON(t, points...)).ID)
	if second.Status != "done" {
		t.Fatalf("second job status = %q (%s)", second.Status, second.Error)
	}
	for i, r := range second.Results {
		if !r.Cached {
			t.Errorf("point %d not served from cache on resubmission", i)
		}
		firstJSON, err := json.Marshal(first.Results[i].Metrics)
		if err != nil {
			t.Fatal(err)
		}
		secondJSON, err := json.Marshal(r.Metrics)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(firstJSON, secondJSON) {
			t.Errorf("point %d: cached metrics differ from first submission", i)
		}
	}
	if got := d.runner.points.Load(); got != int64(len(points)) {
		t.Errorf("resubmission executed %d extra points, want 0", got-int64(len(points)))
	}
	if hits := d.o.Counter("serve.cache.hits").Value() - hitsBefore; hits != int64(len(points)) {
		t.Errorf("serve.cache.hits advanced by %d, want %d", hits, len(points))
	}
}

// Submissions in the same class arriving within the max-wait window share
// one batch (and therefore one campaign run).
func TestDaemonCoalescesSubmissions(t *testing.T) {
	d := startDaemon(t)
	a := d.submit(t, scenarioJSON(t, quickScenario(21)))
	b := d.submit(t, scenarioJSON(t, quickScenario(22)))
	ai, bi := d.wait(t, a.ID), d.wait(t, b.ID)
	if ai.Status != "done" || bi.Status != "done" {
		t.Fatalf("statuses = %q, %q", ai.Status, bi.Status)
	}
	if ai.Batch != bi.Batch {
		t.Errorf("jobs ran in batches %d and %d, want coalesced into one", ai.Batch, bi.Batch)
	}
}

// The events endpoint replays the job's JSONL stream after completion and
// the manifest endpoint serves the assembled run manifest.
func TestDaemonEventsAndManifest(t *testing.T) {
	d := startDaemon(t)
	inf := d.wait(t, d.submit(t, scenarioJSON(t, quickScenario(31))).ID)
	if inf.Status != "done" {
		t.Fatalf("status = %q (%s)", inf.Status, inf.Error)
	}

	resp, err := http.Get(d.ts.URL + "/v1/campaigns/" + inf.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	types := map[string]bool{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		types[ev.Type] = true
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"job_accepted", "round", "job_done"} {
		if !types[want] {
			t.Errorf("event stream missing %q (got %v)", want, types)
		}
	}

	mresp, err := http.Get(d.ts.URL + "/v1/campaigns/" + inf.ID + "/manifest")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("manifest status = %d", mresp.StatusCode)
	}
	var man obs.Manifest
	if err := json.NewDecoder(mresp.Body).Decode(&man); err != nil {
		t.Fatal(err)
	}
	if man.Tool != "cbmad" {
		t.Errorf("manifest tool = %q", man.Tool)
	}
	wantHash, err := quickScenario(31).Hash()
	if err != nil {
		t.Fatal(err)
	}
	if man.ScenarioHash != wantHash {
		t.Errorf("manifest scenario hash = %q, want %q", man.ScenarioHash, wantHash)
	}
}

// Malformed and oversized submissions are rejected at the door.
func TestDaemonRejectsBadSubmissions(t *testing.T) {
	d := startDaemon(t)
	cases := []struct {
		name, body string
		status     int
	}{
		{"empty", `{"what":"x","points":[]}`, http.StatusBadRequest},
		{"garbage", `{nope`, http.StatusBadRequest},
		{"unknown field", `{"what":"x","pints":[]}`, http.StatusBadRequest},
		{"invalid scenario", scenarioJSON(t, func() sim.Scenario {
			s := quickScenario(1)
			s.NumTags = -1 // fails scenario validation inside Hash()
			return s
		}()), http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, err := http.Post(d.ts.URL+"/v1/campaigns", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status = %d, want %d", tc.name, resp.StatusCode, tc.status)
		}
	}
}

// Oversized submit bodies die at the MaxBytesReader with an explicit 413
// JSON error; bodies with trailing garbage after the document are 400s.
// Either way the decoder never buffers more than the configured cap.
func TestDaemonBoundsSubmitBody(t *testing.T) {
	d := startDaemon(t)
	d.srv.maxBody = 512

	huge := `{"what":"` + strings.Repeat("x", 4096) + `","points":[]}`
	resp, err := http.Post(d.ts.URL+"/v1/campaigns", "application/json", strings.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	var e struct {
		Error string `json:"error"`
	}
	err = json.NewDecoder(resp.Body).Decode(&e)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status = %d, want 413", resp.StatusCode)
	}
	if err != nil || !strings.Contains(e.Error, "512") {
		t.Errorf("oversized body: error = %q (decode err %v), want a JSON error naming the limit", e.Error, err)
	}

	// A valid document followed by garbage is malformed, not accepted.
	d.srv.maxBody = defaultMaxBody
	trailing := scenarioJSON(t, quickScenario(1)) + "garbage"
	resp, err = http.Post(d.ts.URL+"/v1/campaigns", "application/json", strings.NewReader(trailing))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("trailing data: status = %d, want 400", resp.StatusCode)
	}

	// A well-formed submission under the cap still goes through.
	inf := d.wait(t, d.submit(t, scenarioJSON(t, quickScenario(2))).ID)
	if inf.Status != "done" {
		t.Errorf("in-bounds submission: status = %q, want done", inf.Status)
	}
}

// Unknown job IDs 404 on every per-job endpoint.
func TestDaemonUnknownJob(t *testing.T) {
	d := startDaemon(t)
	for _, path := range []string{"/v1/campaigns/nope", "/v1/campaigns/nope/events", "/v1/campaigns/nope/manifest"} {
		resp, err := http.Get(d.ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: status = %d, want 404", path, resp.StatusCode)
		}
	}
}

// The list endpoint shows submitted jobs and healthz answers.
func TestDaemonListAndHealth(t *testing.T) {
	d := startDaemon(t)
	inf := d.wait(t, d.submit(t, scenarioJSON(t, quickScenario(41))).ID)

	resp, err := http.Get(d.ts.URL + "/v1/campaigns")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list struct {
		Jobs []jobInfo `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, j := range list.Jobs {
		if j.ID == inf.ID {
			found = true
		}
	}
	if !found {
		t.Errorf("list is missing job %s: %+v", inf.ID, list.Jobs)
	}

	hresp, err := http.Get(d.ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Errorf("healthz status = %d", hresp.StatusCode)
	}

	sresp, err := http.Get(fmt.Sprintf("%s/v1/stats", d.ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var snap obs.Snapshot
	if err := json.NewDecoder(sresp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
}
