package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"cbma/internal/obs"
	"cbma/internal/serve/batch"
	"cbma/internal/serve/core"
	"cbma/internal/sim"
)

// submitRequest is the POST /v1/campaigns body. Points unmarshal directly
// into sim.Scenario — the scenario's exported fields ARE the wire schema —
// with two server-owned exceptions scrubbed after decode: Workers (the
// daemon owns the execution budget) and Obs (attached per job). Interferer
// and trace-replay configuration are not representable over JSON today;
// submissions needing them run through cbmasim.
type submitRequest struct {
	// What labels the campaign in errors, events and manifests.
	What string `json:"what"`
	// Class selects the batching compatibility class (see batch.Request).
	Class string `json:"class,omitempty"`
	// Points are the campaign points to run.
	Points []sim.Scenario `json:"points"`
	// Scenario is a single-point convenience alternative to Points.
	Scenario *sim.Scenario `json:"scenario,omitempty"`
}

// jobInfo is the status representation of one submission.
type jobInfo struct {
	ID      string             `json:"id"`
	What    string             `json:"what,omitempty"`
	Class   string             `json:"class,omitempty"`
	Points  int                `json:"points"`
	Status  string             `json:"status"` // pending | done | failed | canceled
	TraceID string             `json:"trace_id,omitempty"`
	Batch   int                `json:"batch,omitempty"`
	Error   string             `json:"error,omitempty"`
	Results []core.PointResult `json:"results,omitempty"`
}

// jobState tracks one accepted submission end to end: the batcher job, its
// cancel handle, the per-job telemetry pipeline (observer → sink →
// broadcaster) and, once finished, the run manifest.
type jobState struct {
	job    *batch.Job
	what   string
	class  string
	points int
	cancel context.CancelFunc
	bcast  *obs.Broadcaster
	sink   *obs.Sink
	jobObs *obs.Observer

	mu       sync.Mutex
	finished bool
	manifest *obs.Manifest
}

// server is the cbmad HTTP layer over the batch and core layers.
type server struct {
	batcher *batch.Batcher
	o       *obs.Observer // process-wide registry (cache/batch counters)
	// baseCtx bounds every job's lifetime to the daemon's; it is the one
	// place the request tree roots, set once at startup.
	baseCtx   context.Context //cbma:allow ctxflow daemon-lifetime root, audited seam
	maxPoints int
	maxBody   int64 // submit body byte cap, enforced by http.MaxBytesReader
	retain    int   // finished jobs kept for status queries

	wg sync.WaitGroup // tracks finishJob goroutines; drain() waits on it

	mu    sync.Mutex
	jobs  map[string]*jobState
	order []string // insertion order, for bounded retention
}

const (
	defaultMaxPoints = 4096
	defaultRetain    = 1024
	// defaultMaxBody bounds the submit body. Scenarios are a few hundred
	// bytes each, so 8 MiB clears the defaultMaxPoints worst case with
	// headroom while keeping a hostile (or runaway) client from buffering
	// the daemon into the ground.
	defaultMaxBody = 8 << 20
)

// newServer wires the HTTP layer. baseCtx bounds every job's execution
// (shutdown cancels it).
func newServer(baseCtx context.Context, b *batch.Batcher, o *obs.Observer) *server {
	return &server{
		batcher:   b,
		o:         o,
		baseCtx:   baseCtx,
		maxPoints: defaultMaxPoints,
		maxBody:   defaultMaxBody,
		retain:    defaultRetain,
		jobs:      make(map[string]*jobState),
	}
}

// handler builds the route table.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/campaigns", s.handleSubmit)
	mux.HandleFunc("GET /v1/campaigns", s.handleList)
	mux.HandleFunc("GET /v1/campaigns/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /v1/campaigns/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/campaigns/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/campaigns/{id}/manifest", s.handleManifest)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.Handle("GET /metrics", obs.PrometheusHandler(func() obs.Snapshot {
		return s.o.Registry().Snapshot()
	}))
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	// pprof and expvar, sharing the daemon's listener.
	mux.Handle("/debug/", obs.DebugHandler(s.o.Registry()))
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	// Bound the body before touching it: an oversized submission is a
	// distinct, explicit 413 rather than a mid-decode read error, and a
	// malformed one a 400 naming the decode failure.
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	var req submitRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", tooBig.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	// A body with trailing garbage after the JSON document is malformed,
	// not a second document.
	if dec.More() {
		writeError(w, http.StatusBadRequest, "request body holds trailing data after the JSON document")
		return
	}
	points := req.Points
	if req.Scenario != nil {
		points = append(points, *req.Scenario)
	}
	if len(points) == 0 {
		writeError(w, http.StatusBadRequest, "submission has no points")
		return
	}
	if len(points) > s.maxPoints {
		writeError(w, http.StatusBadRequest, "submission has %d points, limit %d", len(points), s.maxPoints)
		return
	}
	// Reject unrunnable points at the door — a 400 now beats a failed job
	// later — and pin each point's content hash while we are at it.
	hashes := make([]string, len(points))
	for i := range points {
		h, err := points[i].Hash()
		if err != nil {
			writeError(w, http.StatusBadRequest, "point %d: %v", i, err)
			return
		}
		hashes[i] = h
	}

	// Per-job telemetry pipeline: events stream through a broadcaster so
	// any number of /events readers can replay and follow them. Each job
	// gets a trace ID up front, so even a pending job's events (and a
	// sharded run's worker relays) are correlated from the first line.
	bcast := obs.NewBroadcaster(0)
	sink := obs.NewSink(bcast, obs.DefaultSinkBuffer)
	jobObs := obs.New(obs.Config{Clock: obs.SystemClock(), Sink: sink})
	jobObs.EnsureTrace()
	for i := range points {
		points[i].Workers = 0
		points[i].Obs = jobObs
	}

	ctx, cancel := context.WithCancel(s.baseCtx)
	job, err := s.batcher.Submit(ctx, batch.Request{What: req.What, Class: req.Class, Points: points})
	if err != nil {
		cancel()
		_ = sink.Close()
		status := http.StatusInternalServerError
		if errors.Is(err, batch.ErrClosed) {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, "submit: %v", err)
		return
	}
	st := &jobState{
		job:    job,
		what:   req.What,
		class:  req.Class,
		points: len(points),
		cancel: cancel,
		bcast:  bcast,
		sink:   sink,
		jobObs: jobObs,
	}
	s.register(job.ID(), st)
	// Bracket the per-job stream with lifecycle markers; the engine's own
	// round/fault events land between them.
	jobObs.Emit("job_accepted", map[string]any{
		"job": job.ID(), "what": req.What, "class": req.Class, "points": len(points),
	})
	s.wg.Add(1)
	go s.finishJob(st, points[0].Seed, hashes)

	w.Header().Set("Location", "/v1/campaigns/"+job.ID())
	writeJSON(w, http.StatusAccepted, s.info(st))
}

// finishJob waits for the job, flushes its event stream and assembles the
// per-request run manifest.
func (s *server) finishJob(st *jobState, seed int64, hashes []string) {
	defer s.wg.Done()
	results, jerr := st.job.Results()
	doneFields := map[string]any{"job": st.job.ID(), "batch": st.job.Batch()}
	if jerr != nil {
		doneFields["error"] = jerr.Error()
	}
	st.jobObs.Emit("job_done", doneFields)
	_ = st.sink.Close() // drains events, closes the broadcaster stream
	man := st.jobObs.Manifest("cbmad")
	// Event-loss ledger: the sink's own drops are in man.Events already;
	// fold in the broadcaster's subscriber-lag drops and replay truncation,
	// and mirror everything into the process registry so /v1/stats and
	// /metrics carry daemon-wide loss totals.
	man.Events.SubscribersDropped = st.bcast.SubscribersDropped()
	man.Events.ReplayTruncated = st.bcast.Truncated()
	s.o.Counter("obs.events.written").Add(man.Events.Written)
	s.o.Counter("obs.events.dropped").Add(man.Events.Dropped)
	s.o.Counter("obs.subscribers.dropped").Add(man.Events.SubscribersDropped)
	s.o.Counter("obs.replay.truncated_bytes").Add(man.Events.ReplayTruncated)
	man.Seed = seed
	man.Interrupted = errors.Is(jerr, context.Canceled) || errors.Is(jerr, context.DeadlineExceeded)
	man.Config = map[string]any{"what": st.what, "class": st.class, "points": hashes}
	if len(hashes) == 1 {
		man.ScenarioHash = hashes[0]
	} else if h, err := obs.HashJSON(hashes); err == nil {
		man.ScenarioHash = h
	}
	man.Result = results
	st.mu.Lock()
	st.finished = true
	st.manifest = &man
	st.mu.Unlock()
	st.cancel()
}

// drain blocks until every finishJob goroutine has completed. Call after
// the batcher has been closed (which resolves all outstanding jobs) so the
// wait is bounded.
func (s *server) drain() {
	s.wg.Wait()
}

// register stores a job state, evicting the oldest finished jobs beyond
// the retention bound so a long-lived daemon's status table stays flat.
func (s *server) register(id string, st *jobState) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jobs[id] = st
	s.order = append(s.order, id)
	for len(s.jobs) > s.retain {
		evicted := false
		for i, oldID := range s.order {
			old := s.jobs[oldID]
			if old == nil {
				s.order = append(s.order[:i], s.order[i+1:]...)
				evicted = true
				break
			}
			old.mu.Lock()
			done := old.finished
			old.mu.Unlock()
			if done {
				delete(s.jobs, oldID)
				s.order = append(s.order[:i], s.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			break // everything resident is still running; let it finish
		}
	}
}

func (s *server) lookup(id string) *jobState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// info renders a job's current status.
func (s *server) info(st *jobState) jobInfo {
	inf := jobInfo{
		ID:      st.job.ID(),
		What:    st.what,
		Class:   st.class,
		Points:  st.points,
		Status:  "pending",
		TraceID: st.jobObs.TraceID(),
	}
	select {
	case <-st.job.Done():
		results, err := st.job.Results()
		inf.Results = results
		inf.Batch = st.job.Batch()
		switch {
		case err == nil:
			inf.Status = "done"
		case errors.Is(err, context.Canceled):
			inf.Status = "canceled"
			inf.Error = err.Error()
		default:
			inf.Status = "failed"
			inf.Error = err.Error()
		}
	default:
	}
	return inf
}

func (s *server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	out := make([]jobInfo, 0, len(ids))
	for _, id := range ids {
		if st := s.lookup(id); st != nil {
			inf := s.info(st)
			inf.Results = nil // list view stays light
			out = append(out, inf)
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

func (s *server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st := s.lookup(r.PathValue("id"))
	if st == nil {
		writeError(w, http.StatusNotFound, "unknown campaign %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, s.info(st))
}

func (s *server) handleCancel(w http.ResponseWriter, r *http.Request) {
	st := s.lookup(r.PathValue("id"))
	if st == nil {
		writeError(w, http.StatusNotFound, "unknown campaign %q", r.PathValue("id"))
		return
	}
	st.cancel()
	writeJSON(w, http.StatusAccepted, map[string]string{"id": st.job.ID(), "status": "canceling"})
}

// handleEvents streams the job's JSONL events: full replay of what has
// already happened, then live follow until the job finishes or the client
// goes away. The stream is exactly what -obs writes to events.jsonl for
// the CLI tools.
func (s *server) handleEvents(w http.ResponseWriter, r *http.Request) {
	st := s.lookup(r.PathValue("id"))
	if st == nil {
		writeError(w, http.StatusNotFound, "unknown campaign %q", r.PathValue("id"))
		return
	}
	history, live, cancel := st.bcast.Subscribe()
	defer cancel()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if _, err := w.Write(history); err != nil {
		return
	}
	if flusher != nil {
		flusher.Flush()
	}
	for {
		select {
		case chunk, ok := <-live:
			if !ok {
				return
			}
			if _, err := w.Write(chunk); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		case <-r.Context().Done():
			return
		}
	}
}

func (s *server) handleManifest(w http.ResponseWriter, r *http.Request) {
	st := s.lookup(r.PathValue("id"))
	if st == nil {
		writeError(w, http.StatusNotFound, "unknown campaign %q", r.PathValue("id"))
		return
	}
	st.mu.Lock()
	man := st.manifest
	st.mu.Unlock()
	if man == nil {
		writeError(w, http.StatusConflict, "campaign %q has not finished", st.job.ID())
		return
	}
	writeJSON(w, http.StatusOK, man)
}

// handleStats serves the process-wide registry snapshot — cache hit/miss
// counters, batch flush counters, campaign timings.
func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.o.Registry().Snapshot())
}
