// Command cbmad is the campaign service daemon: campaigns become requests,
// not processes. It accepts scenario/sweep submissions over a JSON HTTP API,
// coalesces compatible submissions into batched executions sharing one
// worker budget, and serves results from a content-addressed cache — the
// simulator's determinism contract (bit-identical Metrics for an identical
// scenario+seed) is what makes cached results exact, not approximate.
//
//	cbmad -addr :8337 -cache-dir /var/cache/cbma
//
// API (see DESIGN.md "Service architecture" and the README quickstart):
//
//	POST   /v1/campaigns               submit points (JSON scenarios)
//	GET    /v1/campaigns               list known jobs
//	GET    /v1/campaigns/{id}          status + per-point results
//	DELETE /v1/campaigns/{id}          cancel a job
//	GET    /v1/campaigns/{id}/events   stream the job's JSONL events
//	GET    /v1/campaigns/{id}/manifest run manifest (after completion)
//	GET    /v1/stats                   registry snapshot (cache/batch counters)
//	GET    /v1/healthz                 liveness
//	GET    /debug/pprof/, /debug/vars  profiling and expvar
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cbma/internal/obs"
	"cbma/internal/serve/batch"
	"cbma/internal/serve/core"
	"cbma/internal/serve/shard"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cbmad:", err)
		os.Exit(1)
	}
}

func run(argv []string) error {
	fs := flag.NewFlagSet("cbmad", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", ":8337", "listen address for the HTTP API")
		cacheDir     = fs.String("cache-dir", "", "directory for the on-disk result cache (empty: memory only)")
		cacheEntries = fs.Int("cache-entries", core.DefaultMemoryEntries, "in-memory cache capacity (entries)")
		diskEntries  = fs.Int("cache-disk-entries", 0, "disk cache capacity in entries (0: unbounded; LRU eviction)")
		diskBytes    = fs.Int64("cache-disk-bytes", 0, "disk cache capacity in bytes (0: unbounded; LRU eviction)")
		maxBatch     = fs.Int("max-batch", 64, "flush a batch at this many points")
		maxWait      = fs.Duration("max-wait", 150*time.Millisecond, "flush a non-full batch after this long")
		workers      = fs.Int("workers", 0, "engine worker budget per executing batch (0: GOMAXPROCS)")
		parallel     = fs.Int("parallel", 1, "concurrently executing batches")
		drainWait    = fs.Duration("drain-wait", 30*time.Second, "shutdown budget for in-flight batches")
		shards       = fs.Int("shards", 0, "execute each batch sharded across this many worker processes (0: in-process)")
		journalDir   = fs.String("journal-dir", "", "root directory for per-campaign shard journals (with -shards; enables crash-tolerant resume)")
		shardWorker  = fs.Bool("shard-worker", false, "internal: serve one shard assignment on stdin/stdout and exit (spawned by the coordinator)")
	)
	if err := fs.Parse(argv); err != nil {
		return err
	}
	if *shardWorker {
		return shard.ServeWorker(context.Background(), os.Stdin, os.Stdout, nil)
	}

	o := obs.New(obs.Config{Clock: obs.SystemClock()})

	var store core.Store = core.NewMemoryStore(*cacheEntries)
	if *cacheDir != "" {
		var (
			disk *core.DiskStore
			err  error
		)
		if *diskEntries > 0 || *diskBytes > 0 {
			disk, err = core.NewBoundedDiskStore(*cacheDir,
				core.DiskLimits{MaxEntries: *diskEntries, MaxBytes: *diskBytes},
				obs.SystemClock(), o)
		} else {
			disk, err = core.NewDiskStore(*cacheDir, o)
		}
		if err != nil {
			return fmt.Errorf("opening cache dir: %w", err)
		}
		store = core.NewTiered(store, disk)
	}
	var runner core.Runner = core.CampaignRunner{}
	if *shards > 0 {
		// Sharded execution: each batch runs as a journaled campaign across
		// worker processes (this binary, re-exec'd with -shard-worker), so a
		// daemon restart mid-campaign resumes from committed points instead
		// of recomputing them.
		sub, err := shard.NewSubprocess(shard.SubprocessConfig{})
		if err != nil {
			return err
		}
		runner = shard.New(shard.Config{
			Shards:      *shards,
			Transport:   sub,
			JournalRoot: *journalDir,
			Obs:         o,
		})
	}
	svc := &core.Service{Runner: runner, Store: store, Obs: o}
	b := batch.New(batch.Config{
		Service:  svc,
		MaxBatch: *maxBatch,
		MaxWait:  *maxWait,
		Workers:  *workers,
		Parallel: *parallel,
		Obs:      o,
	})

	baseCtx, cancelJobs := context.WithCancel(context.Background())
	defer cancelJobs()
	srv := newServer(baseCtx, b, o)
	httpSrv := &http.Server{Addr: *addr, Handler: srv.handler()}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	log.Printf("cbmad %s listening on %s (cache-dir=%q mem-entries=%d max-batch=%d max-wait=%s workers=%d parallel=%d shards=%d journal-dir=%q)",
		obs.Version(), ln.Addr(), *cacheDir, *cacheEntries, *maxBatch, *maxWait, *workers, *parallel, *shards, *journalDir)

	errc := make(chan error, 1)
	//cbma:fireforget serve loop exits via httpSrv.Shutdown below; errc is buffered so the send never strands it
	go func() { errc <- httpSrv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("cbmad: %s, draining (up to %s)", sig, *drainWait)
	case err := <-errc:
		return err
	}

	// Orderly shutdown: stop intake, drain in-flight batches, then close
	// the listener. Jobs past the drain budget finish with Interrupted
	// partials (the same semantics as SIGINT on cbmasim).
	shutCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	drainErr := b.Close(shutCtx)
	cancelJobs()
	srv.drain() // all jobs are resolved once the batcher closed; collect their finishJob goroutines
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	if drainErr != nil {
		return drainErr
	}
	return nil
}
