package main

import (
	"testing"

	"cbma/internal/leaktest"
)

// TestMain fails the package run if any test leaves a goroutine behind.
// The net/http transport keeps idle keep-alive connections (and their
// readLoop/writeLoop goroutines) pooled between tests by design; each
// daemon's cleanup calls CloseIdleConnections, and the ignore patterns
// below cover the window where a connection is still unwinding.
func TestMain(m *testing.M) {
	leaktest.Main(m,
		"net/http.(*persistConn).readLoop",
		"net/http.(*persistConn).writeLoop",
	)
}
