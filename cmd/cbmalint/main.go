// Command cbmalint runs the repo's custom determinism, hot-path and
// concurrency analyzers (see internal/analysis) over the given package
// patterns:
//
//	go run ./cmd/cbmalint ./...        # whole module (CI does this)
//	go run ./cmd/cbmalint -list        # show the suite
//	go run ./cmd/cbmalint -json ./...  # one JSON object per finding (JSONL)
//
// It prints one line per finding and exits non-zero when any finding
// survives. Findings are suppressed inline with
// `//cbma:allow <analyzer> <reason>` on the offending line or the line
// above.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"cbma/internal/analysis"
	"cbma/internal/analysis/framework"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cbmalint:", err)
		os.Exit(1)
	}
}

// errFindings distinguishes "the suite found problems" from driver failures.
type errFindings int

func (e errFindings) Error() string { return fmt.Sprintf("%d findings", int(e)) }

// jsonDiag is the -json wire form of one finding: a flat object per line
// (JSONL), stable enough for CI artifacts and editor integrations to parse
// without knowing the suite.
type jsonDiag struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("cbmalint", flag.ContinueOnError)
	list := fs.Bool("list", false, "list analyzers and exit")
	asJSON := fs.Bool("json", false, "emit one JSON object per finding (JSONL) instead of plain lines")
	dir := fs.String("C", ".", "run as if started in this directory (module root resolution)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, a := range analysis.Suite() {
			fmt.Fprintf(out, "%-14s %s\n", a.Name, firstLine(a.Doc))
		}
		return nil
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	prog, err := framework.Load(*dir, patterns...)
	if err != nil {
		return err
	}
	diags, err := prog.Run(analysis.Suite())
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(out)
		for _, d := range diags {
			jd := jsonDiag{
				Analyzer: d.Analyzer,
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Message:  d.Message,
			}
			if err := enc.Encode(jd); err != nil {
				return err
			}
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(out, d)
		}
	}
	if len(diags) > 0 {
		return errFindings(len(diags))
	}
	return nil
}

func firstLine(s string) string {
	for i, r := range s {
		if r == '\n' {
			return s[:i]
		}
	}
	return s
}
