// Command cbmalint runs the repo's custom determinism and hot-path
// analyzers (see internal/analysis) over the given package patterns:
//
//	go run ./cmd/cbmalint ./...      # whole module (CI does this)
//	go run ./cmd/cbmalint -list      # show the suite
//
// It prints one line per finding and exits non-zero when any finding
// survives. Findings are suppressed inline with
// `//cbma:allow <analyzer> <reason>` on the offending line or the line
// above.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"cbma/internal/analysis"
	"cbma/internal/analysis/framework"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cbmalint:", err)
		os.Exit(1)
	}
}

// errFindings distinguishes "the suite found problems" from driver failures.
type errFindings int

func (e errFindings) Error() string { return fmt.Sprintf("%d findings", int(e)) }

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("cbmalint", flag.ContinueOnError)
	list := fs.Bool("list", false, "list analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, a := range analysis.Suite() {
			fmt.Fprintf(out, "%-14s %s\n", a.Name, firstLine(a.Doc))
		}
		return nil
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	prog, err := framework.Load(".", patterns...)
	if err != nil {
		return err
	}
	diags, err := prog.Run(analysis.Suite())
	if err != nil {
		return err
	}
	for _, d := range diags {
		fmt.Fprintln(out, d)
	}
	if len(diags) > 0 {
		return errFindings(len(diags))
	}
	return nil
}

func firstLine(s string) string {
	for i, r := range s {
		if r == '\n' {
			return s[:i]
		}
	}
	return s
}
