package main

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cbma/internal/analysis"
	"cbma/internal/analysis/framework"
)

// TestListFlag checks the suite registry is wired into the driver.
func TestListFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"nodeterm", "obsclock", "rngpurpose", "hotalloc", "inplacealias",
		"golifecycle", "lockscope", "ctxflow", "timerguard",
	} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

// TestJSONOutput runs the driver end to end over a scratch module holding
// exactly one violation and checks the -json wire schema: one JSON object
// per line with analyzer, position and message fields.
func TestJSONOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list")
	}
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module lintjson\n\ngo 1.22\n")
	// One lockscope rule-1 finding and nothing else: a Lock with no unlock.
	writeFile(t, filepath.Join(dir, "lib.go"), `package lintjson

import "sync"

var mu sync.Mutex

func Bad() {
	mu.Lock()
}
`)

	var out strings.Builder
	err := run([]string{"-C", dir, "-json", "./..."}, &out)
	var findings errFindings
	if !errors.As(err, &findings) {
		t.Fatalf("run returned %v, want errFindings", err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != int(findings) {
		t.Fatalf("got %d JSON lines for %d findings:\n%s", len(lines), int(findings), out.String())
	}
	if len(lines) != 1 {
		t.Fatalf("got %d findings, want exactly 1:\n%s", len(lines), out.String())
	}
	var d jsonDiag
	if err := json.Unmarshal([]byte(lines[0]), &d); err != nil {
		t.Fatalf("output line is not JSON: %v\n%s", err, lines[0])
	}
	if d.Analyzer != "lockscope" {
		t.Errorf("analyzer = %q, want lockscope", d.Analyzer)
	}
	if filepath.Base(d.File) != "lib.go" || d.Line != 8 || d.Column == 0 {
		t.Errorf("position = %s:%d:%d, want lib.go:8 with a column", d.File, d.Line, d.Column)
	}
	if !strings.Contains(d.Message, "without a matching or deferred unlock") {
		t.Errorf("message = %q, want the lockscope rule-1 text", d.Message)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestModuleClean asserts the repo satisfies its own lint suite: the same
// invariant CI enforces with `go run ./cmd/cbmalint ./...`.
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the whole module")
	}
	prog, err := framework.Load("../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := prog.Run(analysis.Suite())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
