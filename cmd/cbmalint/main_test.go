package main

import (
	"strings"
	"testing"

	"cbma/internal/analysis"
	"cbma/internal/analysis/framework"
)

// TestListFlag checks the suite registry is wired into the driver.
func TestListFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"nodeterm", "rngpurpose", "hotalloc", "inplacealias"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

// TestModuleClean asserts the repo satisfies its own lint suite: the same
// invariant CI enforces with `go run ./cmd/cbmalint ./...`.
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the whole module")
	}
	prog, err := framework.Load("../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := prog.Run(analysis.Suite())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
