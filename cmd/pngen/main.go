// Command pngen emits PN spreading-code families and their correlation
// profiles — handy for inspecting the codes tags would be flashed with.
//
//	pngen -family gold -n 10
//	pngen -family 2nc -n 5 -chips
//	pngen -family gold -n 10 -profile
package main

import (
	"flag"
	"fmt"
	"os"

	"cbma/internal/pn"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pngen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("pngen", flag.ContinueOnError)
	var (
		family  = fs.String("family", "gold", "code family: gold, 2nc, walsh, kasami")
		n       = fs.Int("n", 10, "number of codes (tags)")
		degree  = fs.Uint("degree", 5, "m-sequence degree for gold/kasami")
		chips   = fs.Bool("chips", false, "print full chip sequences")
		profile = fs.Bool("profile", false, "print the correlation profile")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	fam, err := pn.ParseFamily(*family)
	if err != nil {
		return err
	}
	set, err := pn.NewSet(fam, *n, *degree)
	if err != nil {
		return err
	}
	fmt.Printf("family=%s codes=%d chips/bit=%d\n", set.Family, set.Size(), set.ChipLength())
	if *chips {
		for _, c := range set.Codes {
			fmt.Printf("code %2d one:  %s\n", c.ID, chipString(c.One))
			fmt.Printf("code %2d zero: %s\n", c.ID, chipString(c.Zero))
		}
	}
	if *profile {
		aligned, err := pn.Profile(set, 0)
		if err != nil {
			return err
		}
		async, err := pn.Profile(set, -1)
		if err != nil {
			return err
		}
		fmt.Printf("aligned:  max cross %.4f  mean cross %.4f\n", aligned.MaxCross, aligned.MeanCross)
		fmt.Printf("async:    max cross %.4f  mean cross %.4f  max auto sidelobe %.4f\n",
			async.MaxCross, async.MeanCross, async.MaxAutoSidelobe)
	}
	return nil
}

func chipString(chips []byte) string {
	out := make([]byte, len(chips))
	for i, c := range chips {
		out[i] = '0' + c
	}
	return string(out)
}
