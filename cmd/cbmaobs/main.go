// Command cbmaobs analyzes CBMA telemetry: it reads JSONL event streams
// (files written by -obs runs, directories holding events.jsonl +
// manifest.json, "-" for stdin, or a live cbmad /v1/jobs/<id>/events URL)
// and renders, per trace, the campaign timeline, per-stage duration
// quantiles, the slowest points, each shard's dispatch→commit lifecycle and
// a fault summary. With -manifest it renders a run manifest instead.
//
// Usage:
//
//	cbmaobs run-out/events.jsonl         # analyze one event log
//	cbmaobs run-out/                     # events.jsonl + manifest.json
//	cbmaobs -url http://:8080/v1/jobs/j1/events
//	cbmaobs -manifest run-out/manifest.json
//	cbmaobs -json -top 5 events.jsonl    # machine-readable report
//
// Quantiles here are exact — computed from the raw per-event durations —
// unlike the manifest's, which interpolate within log2 histogram buckets.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"cbma/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cbmaobs:", err)
		os.Exit(1)
	}
}

// run is the testable entrypoint: parse flags, gather inputs, analyze,
// render.
func run(argv []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("cbmaobs", flag.ContinueOnError)
	var (
		manifestPath = fs.String("manifest", "", "render this run manifest instead of analyzing events")
		url          = fs.String("url", "", "stream events from this URL (e.g. a cbmad /v1/jobs/<id>/events endpoint)")
		traceFilter  = fs.String("trace", "", "only report the trace with this ID (prefix match)")
		top          = fs.Int("top", 10, "number of slowest points to list")
		asJSON       = fs.Bool("json", false, "emit the report as JSON instead of text")
	)
	fs.SetOutput(os.Stderr)
	if err := fs.Parse(argv); err != nil {
		return err
	}

	if *manifestPath != "" {
		return renderManifestFile(stdout, *manifestPath)
	}

	readers, closers, err := openInputs(fs.Args(), *url, stdin)
	if err != nil {
		return err
	}
	defer func() {
		for _, c := range closers {
			_ = c.Close()
		}
	}()

	rep, err := analyze(io.MultiReader(readers...))
	if err != nil {
		return err
	}
	if *traceFilter != "" {
		kept := rep.Traces[:0]
		for _, tr := range rep.Traces {
			if strings.HasPrefix(tr.ID, *traceFilter) {
				kept = append(kept, tr)
			}
		}
		rep.Traces = kept
		if len(rep.Traces) == 0 {
			return fmt.Errorf("no trace matching %q", *traceFilter)
		}
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	renderReport(stdout, rep, *top)

	// A directory argument may also carry the run manifest; append its
	// stage/breakdown view so one invocation tells the whole story.
	for _, arg := range fs.Args() {
		if st, err := os.Stat(arg); err == nil && st.IsDir() {
			mp := filepath.Join(arg, "manifest.json")
			if _, err := os.Stat(mp); err == nil {
				fmt.Fprintln(stdout)
				if err := renderManifestFile(stdout, mp); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// openInputs resolves the argument list into a reader per input. Arguments
// are event files, directories containing events.jsonl, or "-" for stdin;
// -url adds a streaming HTTP source. With no inputs at all, stdin is read.
func openInputs(args []string, url string, stdin io.Reader) ([]io.Reader, []io.Closer, error) {
	var (
		readers []io.Reader
		closers []io.Closer
	)
	fail := func(err error) ([]io.Reader, []io.Closer, error) {
		for _, c := range closers {
			_ = c.Close()
		}
		return nil, nil, err
	}
	for _, arg := range args {
		if arg == "-" {
			readers = append(readers, stdin)
			continue
		}
		st, err := os.Stat(arg)
		if err != nil {
			return fail(err)
		}
		path := arg
		if st.IsDir() {
			path = filepath.Join(arg, "events.jsonl")
		}
		f, err := os.Open(path)
		if err != nil {
			return fail(err)
		}
		readers = append(readers, f)
		closers = append(closers, f)
	}
	if url != "" {
		resp, err := http.Get(url)
		if err != nil {
			return fail(err)
		}
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			_ = resp.Body.Close()
			return fail(fmt.Errorf("GET %s: %s: %s", url, resp.Status, strings.TrimSpace(string(body))))
		}
		readers = append(readers, resp.Body)
		closers = append(closers, resp.Body)
	}
	if len(readers) == 0 {
		readers = append(readers, stdin)
	}
	return readers, closers, nil
}

// fmtNs renders a nanosecond duration compactly for tables.
func fmtNs(ns int64) string {
	d := time.Duration(ns)
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	case d >= time.Microsecond:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	default:
		return fmt.Sprintf("%dns", ns)
	}
}

// renderReport writes the human-readable per-trace analysis.
func renderReport(w io.Writer, rep *report, top int) {
	fmt.Fprintf(w, "cbmaobs: %d event(s), %d trace(s)", rep.Events, len(rep.Traces))
	if rep.Undecodable > 0 {
		fmt.Fprintf(w, ", %d undecodable line(s)", rep.Undecodable)
	}
	fmt.Fprintln(w)
	for _, tr := range rep.Traces {
		fmt.Fprintln(w)
		renderTrace(w, tr, top)
	}
}

// renderTrace writes one trace's sections: header, stages, slowest points,
// shard lifecycle, faults.
func renderTrace(w io.Writer, tr *traceReport, top int) {
	id := tr.ID
	if id == "" {
		id = "(untraced)"
	}
	fmt.Fprintf(w, "trace %s", id)
	if tr.What != "" {
		fmt.Fprintf(w, "  %q", tr.What)
	}
	fmt.Fprintln(w)
	span := tr.LastT - tr.FirstT
	if tr.FirstT < 0 {
		span = 0
	}
	fmt.Fprintf(w, "  span    %s  (%d events, %d types)\n", fmtNs(span), tr.Events, len(tr.Types))
	fmt.Fprintf(w, "  points  %d committed", tr.Committed)
	if tr.Failed > 0 {
		fmt.Fprintf(w, ", %d failed", tr.Failed)
	}
	if tr.Cached > 0 {
		fmt.Fprintf(w, ", %d cached", tr.Cached)
	}
	if tr.Restored > 0 {
		fmt.Fprintf(w, ", %d restored from journal", tr.Restored)
	}
	if tr.TotalPoints > 0 {
		fmt.Fprintf(w, " / %d total", tr.TotalPoints)
	}
	fmt.Fprintln(w)
	if tr.Rounds > 0 {
		fmt.Fprintf(w, "  rounds  %d", tr.Rounds)
		if tr.RoundRetries > 0 {
			fmt.Fprintf(w, ", %d retried", tr.RoundRetries)
		}
		if tr.RoundsQuarantined > 0 {
			fmt.Fprintf(w, ", %d quarantined", tr.RoundsQuarantined)
		}
		fmt.Fprintln(w)
	}

	if len(tr.Stages) > 0 {
		fmt.Fprintln(w, "  stages")
		fmt.Fprintf(w, "    %-18s %7s %10s %10s %10s %10s\n", "name", "count", "p50", "p95", "p99", "max")
		for _, st := range tr.Stages {
			fmt.Fprintf(w, "    %-18s %7d %10s %10s %10s %10s\n",
				st.Name, st.Count, fmtNs(st.P50Ns), fmtNs(st.P95Ns), fmtNs(st.P99Ns), fmtNs(st.MaxNs))
		}
	}

	if slow := tr.slowest(top); len(slow) > 0 {
		fmt.Fprintf(w, "  slowest %d point(s)\n", len(slow))
		for _, p := range slow {
			fmt.Fprintf(w, "    point %-5d %10s", p.Index, fmtNs(p.Ns))
			if p.Shard > 0 || len(tr.Shards) > 0 {
				fmt.Fprintf(w, "  shard %d attempt %d", p.Shard, p.Attempt)
			}
			if p.Failed {
				fmt.Fprint(w, "  FAILED")
			}
			fmt.Fprintln(w)
		}
	}

	for _, sr := range tr.Shards {
		fmt.Fprintf(w, "  shard %d: %d dispatch(es), %d committed", sr.Shard, sr.Dispatches, sr.Committed)
		if sr.Failed > 0 {
			fmt.Fprintf(w, ", %d failed", sr.Failed)
		}
		if sr.Retries > 0 {
			fmt.Fprintf(w, ", %d retried", sr.Retries)
		}
		if sr.Quarantined > 0 {
			fmt.Fprintf(w, ", %d quarantined point(s)", sr.Quarantined)
		}
		if sr.Relayed > 0 {
			fmt.Fprintf(w, ", %d relayed event(s)", sr.Relayed)
		}
		fmt.Fprintln(w)
		for _, le := range sr.Timeline {
			off := le.T - tr.FirstT
			if tr.FirstT < 0 {
				off = 0
			}
			fmt.Fprintf(w, "    +%-10s %-10s %s\n", fmtNs(off), le.Kind, le.Detail)
		}
	}

	if len(tr.Faults) > 0 {
		keys := make([]string, 0, len(tr.Faults))
		for k := range tr.Faults {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprint(w, "  faults ")
		for _, k := range keys {
			fmt.Fprintf(w, " %s=%d", k, tr.Faults[k])
		}
		fmt.Fprintln(w)
	}
}

// renderManifestFile loads and renders one run manifest.
func renderManifestFile(w io.Writer, path string) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var man obs.Manifest
	if err := json.Unmarshal(b, &man); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	renderManifest(w, &man)
	return nil
}

// renderManifest writes the manifest's run header, stage table, event
// ledger and — for sharded runs — the per-shard breakdown with the merged
// worker-registry totals.
func renderManifest(w io.Writer, man *obs.Manifest) {
	fmt.Fprintf(w, "manifest: %s %s (%s %s/%s)\n", man.Tool, man.Version, man.GoVersion, man.OS, man.Arch)
	fmt.Fprintf(w, "  wall    %s", fmtNs(man.WallNs))
	if man.Workers > 0 {
		fmt.Fprintf(w, ", %d workers", man.Workers)
	}
	if man.Shards > 0 {
		fmt.Fprintf(w, ", %d shards", man.Shards)
	}
	if man.Resumed > 0 {
		fmt.Fprintf(w, ", %d points resumed", man.Resumed)
	}
	if man.Interrupted {
		fmt.Fprint(w, ", INTERRUPTED")
	}
	fmt.Fprintln(w)
	if man.TraceID != "" {
		fmt.Fprintf(w, "  trace   %s\n", man.TraceID)
	}
	fmt.Fprintf(w, "  events  %d written, %d dropped", man.Events.Written, man.Events.Dropped)
	if man.Events.SubscribersDropped > 0 {
		fmt.Fprintf(w, ", %d subscriber(s) dropped", man.Events.SubscribersDropped)
	}
	if man.Events.ReplayTruncated > 0 {
		fmt.Fprintf(w, ", %dB replay truncated", man.Events.ReplayTruncated)
	}
	fmt.Fprintln(w)
	if len(man.Stages) > 0 {
		fmt.Fprintln(w, "  stages")
		fmt.Fprintf(w, "    %-22s %8s %10s %10s %10s %10s %10s\n", "name", "count", "mean", "p50", "p95", "p99", "max")
		for _, st := range man.Stages {
			fmt.Fprintf(w, "    %-22s %8d %10s %10s %10s %10s %10s\n",
				st.Name, st.Count, fmtNs(st.MeanNs), fmtNs(st.P50Ns), fmtNs(st.P95Ns), fmtNs(st.P99Ns), fmtNs(st.MaxNs))
		}
	}
	if len(man.ShardBreakdown) > 0 {
		var total int64
		fmt.Fprintln(w, "  shard breakdown")
		fmt.Fprintf(w, "    %-6s %8s %8s %9s %8s %12s\n", "shard", "points", "failed", "attempts", "beats", "worker p95")
		for _, row := range man.ShardBreakdown {
			total += row.Points
			fmt.Fprintf(w, "    %-6d %8d %8d %9d %8d %12s\n",
				row.Shard, row.Points, row.Failed, row.Attempts, row.Beats,
				fmtNs(histQuantile(row.Registry, "shard.point_ns", 0.95)))
		}
		fmt.Fprintf(w, "    total  %8d\n", total)
	}
	if man.WorkerRegistry != nil {
		fmt.Fprintln(w, "  worker registry (merged)")
		for _, c := range man.WorkerRegistry.Counters {
			fmt.Fprintf(w, "    %-28s %d\n", c.Name, c.Value)
		}
		for _, h := range man.WorkerRegistry.Histograms {
			fmt.Fprintf(w, "    %-28s n=%d p50=%s p95=%s max=%s\n",
				h.Name, h.Count, fmtNs(h.Quantile(0.50)), fmtNs(h.Quantile(0.95)), fmtNs(h.Max))
		}
	}
}

// histQuantile finds the named histogram in a snapshot and returns its
// interpolated quantile, or 0 when absent.
func histQuantile(s obs.Snapshot, name string, q float64) int64 {
	for _, h := range s.Histograms {
		if h.Name == name {
			return h.Quantile(q)
		}
	}
	return 0
}
