package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cbma/internal/obs"
)

// fixture is a condensed sharded-run event log: campaign start, a restore,
// two shards (one clean, one retried then quarantined), relayed worker
// events, engine rounds and a fault burst. Timestamps are small integers so
// offsets are easy to assert.
const fixture = `{"t_ns":100,"type":"campaign_start","fields":{"trace_id":"aabbccdd00112233","what":"sweep","points":6}}
{"t_ns":110,"type":"campaign_restored","fields":{"trace_id":"aabbccdd00112233","what":"sweep","points":2}}
{"t_ns":200,"type":"shard_dispatch","fields":{"trace_id":"aabbccdd00112233","shard":0,"attempt":0,"points":2,"span_id":"s0"}}
{"t_ns":210,"type":"shard_dispatch","fields":{"trace_id":"aabbccdd00112233","shard":1,"attempt":0,"points":2,"span_id":"s1"}}
{"t_ns":300,"type":"round","fields":{"trace_id":"aabbccdd00112233","shard":0,"attempt":0,"worker_t_ns":55,"round":1,"sent":4,"delivered":4,"acked":4}}
{"t_ns":310,"type":"round","fields":{"trace_id":"aabbccdd00112233","shard":0,"attempt":0,"worker_t_ns":56,"round":2,"sent":4,"delivered":3,"acked":3,"retries":1}}
{"t_ns":320,"type":"faults_fired","fields":{"trace_id":"aabbccdd00112233","shard":0,"attempt":0,"worker_t_ns":57,"round":2,"ack_loss":3,"outage":1}}
{"t_ns":400,"type":"shard_point","fields":{"trace_id":"aabbccdd00112233","what":"sweep","shard":0,"attempt":0,"point":2,"span_id":"p2","ns":1000000}}
{"t_ns":410,"type":"shard_point","fields":{"trace_id":"aabbccdd00112233","what":"sweep","shard":0,"attempt":0,"point":3,"span_id":"p3","ns":3000000}}
{"t_ns":420,"type":"shard_attempt_done","fields":{"trace_id":"aabbccdd00112233","what":"sweep","shard":0,"attempt":0,"span_id":"s0","delivered":2,"pending":0,"ns":220}}
{"t_ns":430,"type":"shard_retry","fields":{"trace_id":"aabbccdd00112233","what":"sweep","shard":1,"attempt":1,"pending":2,"span_id":"s1","error":"worker exited: signal: killed"}}
{"t_ns":440,"type":"shard_dispatch","fields":{"trace_id":"aabbccdd00112233","shard":1,"attempt":1,"points":2,"span_id":"s1"}}
{"t_ns":450,"type":"shard_point","fields":{"trace_id":"aabbccdd00112233","what":"sweep","shard":1,"attempt":1,"point":4,"span_id":"p4","ns":2000000}}
{"t_ns":460,"type":"shard_quarantine","fields":{"trace_id":"aabbccdd00112233","what":"sweep","shard":1,"points":1,"attempts":2,"span_id":"s1","error":"worker exited: boom"}}
{"t_ns":470,"type":"shard_point","fields":{"trace_id":"aabbccdd00112233","what":"sweep","shard":1,"attempt":1,"point":5,"span_id":"p5","failed":true}}
{"t_ns":500,"type":"point_cached","fields":{"trace_id":"aabbccdd00112233","point":0,"hash":"h0"}}
{"t_ns":600,"type":"campaign_start","fields":{"what":"local run","points":1}}
{"t_ns":700,"type":"point","fields":{"what":"local run","point":0,"ns":500000}}
not json at all
`

func mustAnalyze(t *testing.T, in string) *report {
	t.Helper()
	rep, err := analyze(strings.NewReader(in))
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return rep
}

func TestAnalyzeGroupsByTrace(t *testing.T) {
	rep := mustAnalyze(t, fixture)
	if rep.Events != 18 {
		t.Fatalf("events = %d, want 18", rep.Events)
	}
	if rep.Undecodable != 1 {
		t.Fatalf("undecodable = %d, want 1", rep.Undecodable)
	}
	if len(rep.Traces) != 2 {
		t.Fatalf("traces = %d, want 2", len(rep.Traces))
	}
	tr := rep.Traces[0]
	if tr.ID != "aabbccdd00112233" || tr.What != "sweep" {
		t.Fatalf("trace 0 = %q %q", tr.ID, tr.What)
	}
	if tr.TotalPoints != 6 || tr.Restored != 2 || tr.Cached != 1 {
		t.Fatalf("total/restored/cached = %d/%d/%d", tr.TotalPoints, tr.Restored, tr.Cached)
	}
	if tr.Committed != 3 || tr.Failed != 1 {
		t.Fatalf("committed/failed = %d/%d, want 3/1", tr.Committed, tr.Failed)
	}
	if tr.FirstT != 100 || tr.LastT != 500 {
		t.Fatalf("span = [%d,%d]", tr.FirstT, tr.LastT)
	}
	// The untraced local run groups separately.
	loc := rep.Traces[1]
	if loc.ID != "" || loc.Committed != 1 {
		t.Fatalf("untraced trace = %q committed=%d", loc.ID, loc.Committed)
	}
	if len(loc.Points) != 1 || loc.Points[0].Ns != 500000 {
		t.Fatalf("untraced points = %+v", loc.Points)
	}
}

func TestAnalyzeShardLifecycle(t *testing.T) {
	tr := mustAnalyze(t, fixture).Traces[0]
	if len(tr.Shards) != 2 {
		t.Fatalf("shards = %d, want 2", len(tr.Shards))
	}
	s0, s1 := tr.Shards[0], tr.Shards[1]
	if s0.Shard != 0 || s0.Dispatches != 1 || s0.Committed != 2 || s0.Retries != 0 {
		t.Fatalf("shard 0 = %+v", s0)
	}
	if s0.Relayed != 3 {
		t.Fatalf("shard 0 relayed = %d, want 3", s0.Relayed)
	}
	if s1.Shard != 1 || s1.Dispatches != 2 || s1.Retries != 1 || s1.Quarantined != 1 {
		t.Fatalf("shard 1 = %+v", s1)
	}
	if s1.Committed != 1 || s1.Failed != 1 {
		t.Fatalf("shard 1 committed/failed = %d/%d", s1.Committed, s1.Failed)
	}
	// Timeline is time-ordered: dispatch, retry, dispatch, quarantine.
	kinds := make([]string, len(s1.Timeline))
	for i, le := range s1.Timeline {
		kinds[i] = le.Kind
	}
	want := []string{"dispatch", "retry", "dispatch", "quarantine"}
	if strings.Join(kinds, ",") != strings.Join(want, ",") {
		t.Fatalf("shard 1 timeline = %v, want %v", kinds, want)
	}
}

func TestAnalyzeStagesAndSlowest(t *testing.T) {
	tr := mustAnalyze(t, fixture).Traces[0]
	var sp *stageReport
	for i := range tr.Stages {
		if tr.Stages[i].Name == "shard.point" {
			sp = &tr.Stages[i]
		}
	}
	if sp == nil {
		t.Fatalf("no shard.point stage in %+v", tr.Stages)
	}
	if sp.Count != 3 || sp.P50Ns != 2000000 || sp.MaxNs != 3000000 || sp.SumNs != 6000000 {
		t.Fatalf("shard.point stage = %+v", *sp)
	}
	slow := tr.slowest(2)
	if len(slow) != 2 || slow[0].Index != 3 || slow[1].Index != 4 {
		t.Fatalf("slowest = %+v", slow)
	}
	// The failed point carries no ns and must not appear among the slowest.
	for _, p := range tr.slowest(10) {
		if p.Ns == 0 {
			t.Fatalf("untimed point in slowest: %+v", p)
		}
	}
}

func TestAnalyzeFaults(t *testing.T) {
	tr := mustAnalyze(t, fixture).Traces[0]
	want := map[string]int64{
		"shard_retry":      1,
		"shard_quarantine": 1,
		"fault.ack_loss":   3,
		"fault.outage":     1,
	}
	for k, v := range want {
		if tr.Faults[k] != v {
			t.Errorf("faults[%q] = %d, want %d", k, tr.Faults[k], v)
		}
	}
	if tr.Rounds != 2 || tr.RoundRetries != 1 {
		t.Fatalf("rounds/retries = %d/%d", tr.Rounds, tr.RoundRetries)
	}
}

func TestExactQuantiles(t *testing.T) {
	agg := &durAgg{}
	for i := int64(1); i <= 100; i++ {
		agg.add(i)
	}
	// Already sorted ascending; quantile() assumes finalize() sorted it.
	for _, tc := range []struct {
		q    float64
		want int64
	}{{0.50, 50}, {0.95, 95}, {0.99, 99}, {0, 1}, {1, 100}} {
		if got := agg.quantile(tc.q); got != tc.want {
			t.Errorf("quantile(%v) = %d, want %d", tc.q, got, tc.want)
		}
	}
}

func TestRunTextAndJSONOutput(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-top", "2", "-"}, strings.NewReader(fixture), &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	text := out.String()
	for _, want := range []string{
		"trace aabbccdd00112233",
		`"sweep"`,
		"shard 1: 2 dispatch(es)",
		"quarantine",
		"slowest 2 point(s)",
		"fault.ack_loss=3",
		"1 undecodable line(s)",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("text output missing %q:\n%s", want, text)
		}
	}

	out.Reset()
	if err := run([]string{"-json", "-trace", "aabb", "-"}, strings.NewReader(fixture), &out); err != nil {
		t.Fatalf("run -json: %v", err)
	}
	var rep report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("output not JSON: %v", err)
	}
	if len(rep.Traces) != 1 || rep.Traces[0].ID != "aabbccdd00112233" {
		t.Fatalf("-trace filter kept %d traces", len(rep.Traces))
	}

	if err := run([]string{"-trace", "nope", "-"}, strings.NewReader(fixture), io.Discard); err == nil {
		t.Fatal("expected error for unmatched -trace filter")
	}
}

func TestRunReadsDirWithManifest(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "events.jsonl"), []byte(fixture), 0o644); err != nil {
		t.Fatal(err)
	}
	man := obs.Manifest{
		Tool: "cbmasim", Version: "test", GoVersion: "go", OS: "linux", Arch: "amd64",
		WallNs: 123456789, Shards: 2, Resumed: 2, TraceID: "aabbccdd00112233",
		Events: obs.EventStats{Written: 18},
		Stages: []obs.StageTime{{Name: "shard.point_ns", Count: 3, TotalNs: 6000000, MeanNs: 2000000, P50Ns: 2000000, P95Ns: 3000000, P99Ns: 3000000, MaxNs: 3000000}},
		ShardBreakdown: []obs.ShardTelemetry{
			{Shard: 0, Points: 2, Attempts: 1},
			{Shard: 1, Points: 2, Failed: 1, Attempts: 2},
		},
	}
	b, err := json.Marshal(man)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), b, 0o644); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if err := run([]string{dir}, strings.NewReader(""), &out); err != nil {
		t.Fatalf("run(dir): %v", err)
	}
	text := out.String()
	for _, want := range []string{
		"trace aabbccdd00112233",
		"manifest: cbmasim test",
		"2 shards",
		"2 points resumed",
		"shard breakdown",
		"total         4",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("dir output missing %q:\n%s", want, text)
		}
	}

	var mout bytes.Buffer
	if err := run([]string{"-manifest", filepath.Join(dir, "manifest.json")}, strings.NewReader(""), &mout); err != nil {
		t.Fatalf("run(-manifest): %v", err)
	}
	if !strings.Contains(mout.String(), "shard breakdown") {
		t.Fatalf("-manifest output missing breakdown:\n%s", mout.String())
	}
}
