package main

// Event-stream analysis: fold a JSONL telemetry stream (an -obs events file
// or a cbmad /events stream) into per-trace reports — campaign shape, stage
// duration quantiles, slowest points, per-shard lifecycle, fault summary.
// The analyzer is pure: it reads events, never the clock, and quantiles are
// exact (computed over the raw per-event durations, not histogram buckets).

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"cbma/internal/obs"
)

// report is the analyzer's output over one event stream.
type report struct {
	Events      int            `json:"events"`
	Undecodable int            `json:"undecodable,omitempty"`
	Traces      []*traceReport `json:"traces"`
}

// traceReport aggregates one trace's events. Events that carry no trace_id
// (single-process runs predating a trace, or engine events emitted before
// the coordinator tagged the stream) group under the empty ID.
type traceReport struct {
	ID     string           `json:"trace_id,omitempty"`
	What   string           `json:"what,omitempty"`
	FirstT int64            `json:"first_t_ns"`
	LastT  int64            `json:"last_t_ns"`
	Events int              `json:"events"`
	Types  map[string]int64 `json:"types"`

	TotalPoints int `json:"total_points,omitempty"`
	Restored    int `json:"restored,omitempty"`
	Committed   int `json:"committed"`
	Failed      int `json:"failed,omitempty"`
	Cached      int `json:"cached,omitempty"`

	Rounds            int64 `json:"rounds,omitempty"`
	RoundRetries      int64 `json:"round_retries,omitempty"`
	RoundsQuarantined int64 `json:"rounds_quarantined,omitempty"`

	Stages []stageReport    `json:"stages,omitempty"`
	Points []pointRec       `json:"points,omitempty"`
	Shards []*shardReport   `json:"shards,omitempty"`
	Faults map[string]int64 `json:"faults,omitempty"`

	// campaign-level point records, used only when no shard_point events
	// exist (a non-sharded run).
	flatPoints []pointRec
	stages     map[string]*durAgg
	shards     map[int]*shardReport
}

// stageReport is one duration population with exact quantiles.
type stageReport struct {
	Name  string `json:"name"`
	Count int    `json:"count"`
	P50Ns int64  `json:"p50_ns"`
	P95Ns int64  `json:"p95_ns"`
	P99Ns int64  `json:"p99_ns"`
	MaxNs int64  `json:"max_ns"`
	SumNs int64  `json:"sum_ns"`
}

// pointRec is one executed campaign point.
type pointRec struct {
	Index   int   `json:"point"`
	Ns      int64 `json:"ns,omitempty"`
	Shard   int   `json:"shard,omitempty"`
	Attempt int   `json:"attempt,omitempty"`
	Failed  bool  `json:"failed,omitempty"`
}

// shardReport reconstructs one shard's lifecycle from its events.
type shardReport struct {
	Shard       int              `json:"shard"`
	SpanID      string           `json:"span_id,omitempty"`
	Dispatches  int              `json:"dispatches"`
	Retries     int              `json:"retries,omitempty"`
	Quarantined int              `json:"quarantined_points,omitempty"`
	Committed   int              `json:"committed"`
	Failed      int              `json:"failed,omitempty"`
	Relayed     int              `json:"relayed_events,omitempty"`
	Timeline    []lifecycleEntry `json:"timeline,omitempty"`
}

// lifecycleEntry is one step of a shard's dispatch→commit history.
type lifecycleEntry struct {
	T      int64  `json:"t_ns"`
	Kind   string `json:"kind"` // dispatch | done | retry | quarantine
	Detail string `json:"detail"`
}

// durAgg collects raw durations for exact quantiles.
type durAgg struct{ vals []int64 }

func (d *durAgg) add(ns int64) { d.vals = append(d.vals, ns) }

// quantile returns the exact q-quantile of the collected values.
func (d *durAgg) quantile(q float64) int64 {
	if len(d.vals) == 0 {
		return 0
	}
	i := int(q*float64(len(d.vals))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(d.vals) {
		i = len(d.vals) - 1
	}
	return d.vals[i]
}

// asInt coerces a decoded JSON field into an int64 (JSON numbers arrive as
// float64; in-process events may carry native integer types).
func asInt(v any) (int64, bool) {
	switch n := v.(type) {
	case float64:
		return int64(n), true
	case int:
		return int64(n), true
	case int64:
		return n, true
	case uint64:
		return int64(n), true
	case json.Number:
		i, err := n.Int64()
		return i, err == nil
	}
	return 0, false
}

func fInt(f map[string]any, key string) int64 {
	n, _ := asInt(f[key])
	return n
}

func fStr(f map[string]any, key string) string {
	s, _ := f[key].(string)
	return s
}

func fBool(f map[string]any, key string) bool {
	b, _ := f[key].(bool)
	return b
}

// metaFields are tags the coordinator/relay adds to every event; fault and
// round accounting must not sum them as payload.
var metaFields = map[string]bool{
	"trace_id": true, "span_id": true, "shard": true, "attempt": true,
	"worker_t_ns": true, "round": true, "what": true, "point": true,
}

// analyze folds a JSONL event stream into a report. Undecodable lines are
// counted, never fatal — a live stream may end mid-line.
func analyze(r io.Reader) (*report, error) {
	rep := &report{}
	byID := map[string]*traceReport{}
	trace := func(id string) *traceReport {
		tr, ok := byID[id]
		if !ok {
			tr = &traceReport{
				ID:     id,
				Types:  map[string]int64{},
				Faults: map[string]int64{},
				stages: map[string]*durAgg{},
				shards: map[int]*shardReport{},
				FirstT: -1,
			}
			byID[id] = tr
			rep.Traces = append(rep.Traces, tr)
		}
		return tr
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 8<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev obs.Event
		if err := json.Unmarshal(line, &ev); err != nil {
			rep.Undecodable++
			continue
		}
		rep.Events++
		f := ev.Fields
		if f == nil {
			f = map[string]any{}
		}
		tr := trace(fStr(f, "trace_id"))
		tr.Events++
		tr.Types[ev.Type]++
		if tr.FirstT < 0 || ev.T < tr.FirstT {
			tr.FirstT = ev.T
		}
		if ev.T > tr.LastT {
			tr.LastT = ev.T
		}
		tr.observe(ev.T, ev.Type, f)
	}
	if err := sc.Err(); err != nil {
		return rep, err
	}
	for _, tr := range rep.Traces {
		tr.finalize()
	}
	return rep, nil
}

// shard returns the trace's shard report, creating it on first use.
func (tr *traceReport) shard(s int) *shardReport {
	sr, ok := tr.shards[s]
	if !ok {
		sr = &shardReport{Shard: s}
		tr.shards[s] = sr
	}
	return sr
}

// stage returns the named duration population.
func (tr *traceReport) stage(name string) *durAgg {
	st, ok := tr.stages[name]
	if !ok {
		st = &durAgg{}
		tr.stages[name] = st
	}
	return st
}

// observe folds one event into the trace.
func (tr *traceReport) observe(t int64, typ string, f map[string]any) {
	switch typ {
	case "campaign_start":
		if tr.What == "" {
			tr.What = fStr(f, "what")
		}
		if n := int(fInt(f, "points")); n > tr.TotalPoints {
			tr.TotalPoints = n
		}
	case "campaign_restored":
		tr.Restored += int(fInt(f, "points"))
	case "point_cached":
		tr.Cached++
	case "point":
		ns := fInt(f, "ns")
		if _, relayed := f["shard"]; relayed {
			// Worker-relayed point event: its index is worker-local (always
			// 0 in a single-point worker campaign), so it feeds the stage
			// population only; shard_point carries the campaign index.
			if ns > 0 {
				tr.stage("worker.point").add(ns)
			}
			return
		}
		if ns > 0 {
			tr.stage("campaign.point").add(ns)
		}
		tr.flatPoints = append(tr.flatPoints, pointRec{
			Index: int(fInt(f, "point")), Ns: ns, Failed: fBool(f, "failed"),
		})
		if fBool(f, "failed") {
			tr.Failed++
		} else {
			tr.Committed++
		}
	case "shard_point":
		sh := int(fInt(f, "shard"))
		sr := tr.shard(sh)
		rec := pointRec{
			Index: int(fInt(f, "point")), Ns: fInt(f, "ns"),
			Shard: sh, Attempt: int(fInt(f, "attempt")), Failed: fBool(f, "failed"),
		}
		tr.Points = append(tr.Points, rec)
		if rec.Ns > 0 {
			tr.stage("shard.point").add(rec.Ns)
		}
		if rec.Failed {
			sr.Failed++
			tr.Failed++
		} else {
			sr.Committed++
			tr.Committed++
		}
	case "shard_dispatch":
		sr := tr.shard(int(fInt(f, "shard")))
		sr.Dispatches++
		if sr.SpanID == "" {
			sr.SpanID = fStr(f, "span_id")
		}
		sr.Timeline = append(sr.Timeline, lifecycleEntry{T: t, Kind: "dispatch",
			Detail: fmt.Sprintf("attempt %d, %d points", fInt(f, "attempt"), fInt(f, "points"))})
	case "shard_attempt_done":
		sr := tr.shard(int(fInt(f, "shard")))
		ns := fInt(f, "ns")
		if ns > 0 {
			tr.stage("shard.attempt").add(ns)
		}
		detail := fmt.Sprintf("attempt %d: %d delivered in %s", fInt(f, "attempt"), fInt(f, "delivered"), fmtNs(ns))
		if e := fStr(f, "error"); e != "" {
			detail += " (" + e + ")"
		}
		sr.Timeline = append(sr.Timeline, lifecycleEntry{T: t, Kind: "done", Detail: detail})
	case "shard_retry":
		sr := tr.shard(int(fInt(f, "shard")))
		sr.Retries++
		tr.Faults["shard_retry"]++
		sr.Timeline = append(sr.Timeline, lifecycleEntry{T: t, Kind: "retry",
			Detail: fmt.Sprintf("%d pending: %s", fInt(f, "pending"), fStr(f, "error"))})
	case "shard_quarantine":
		sr := tr.shard(int(fInt(f, "shard")))
		sr.Quarantined += int(fInt(f, "points"))
		tr.Faults["shard_quarantine"]++
		sr.Timeline = append(sr.Timeline, lifecycleEntry{T: t, Kind: "quarantine",
			Detail: fmt.Sprintf("%d points after %d attempts: %s", fInt(f, "points"), fInt(f, "attempts"), fStr(f, "error"))})
	case "round":
		tr.Rounds++
		tr.RoundRetries += fInt(f, "retries")
		if fBool(f, "quarantined") {
			tr.RoundsQuarantined++
		}
	case "faults_fired":
		for k, v := range f {
			if metaFields[k] {
				continue
			}
			if n, ok := asInt(v); ok {
				tr.Faults["fault."+k] += n
			}
		}
	case "rx_fft_fallback":
		tr.Faults["rx_fft_fallback"]++
	}
	if _, relayed := f["shard"]; relayed && fInt(f, "worker_t_ns") != 0 {
		tr.shard(int(fInt(f, "shard"))).Relayed++
	}
}

// finalize sorts the populations and renders the aggregate views.
func (tr *traceReport) finalize() {
	if len(tr.Points) == 0 {
		tr.Points = tr.flatPoints
	}
	names := make([]string, 0, len(tr.stages))
	for name := range tr.stages {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		agg := tr.stages[name]
		sort.Slice(agg.vals, func(i, j int) bool { return agg.vals[i] < agg.vals[j] })
		var sum int64
		for _, v := range agg.vals {
			sum += v
		}
		tr.Stages = append(tr.Stages, stageReport{
			Name:  name,
			Count: len(agg.vals),
			P50Ns: agg.quantile(0.50),
			P95Ns: agg.quantile(0.95),
			P99Ns: agg.quantile(0.99),
			MaxNs: agg.vals[len(agg.vals)-1],
			SumNs: sum,
		})
	}
	shardIdx := make([]int, 0, len(tr.shards))
	for s := range tr.shards {
		shardIdx = append(shardIdx, s)
	}
	sort.Ints(shardIdx)
	for _, s := range shardIdx {
		sr := tr.shards[s]
		sort.Slice(sr.Timeline, func(i, j int) bool { return sr.Timeline[i].T < sr.Timeline[j].T })
		tr.Shards = append(tr.Shards, sr)
	}
}

// slowest returns the n slowest timed points, descending.
func (tr *traceReport) slowest(n int) []pointRec {
	timed := make([]pointRec, 0, len(tr.Points))
	for _, p := range tr.Points {
		if p.Ns > 0 {
			timed = append(timed, p)
		}
	}
	sort.Slice(timed, func(i, j int) bool { return timed[i].Ns > timed[j].Ns })
	if len(timed) > n {
		timed = timed[:n]
	}
	return timed
}
