package main

import (
	"reflect"
	"strings"
	"testing"

	cbma "cbma"
)

func TestParseFaultProfile(t *testing.T) {
	p, err := parseFaultProfile("stuck=0.1, ack-loss=0.25,feedback-retries=3, fallback-state=2,panic=0.05,retries=4")
	if err != nil {
		t.Fatal(err)
	}
	want := &cbma.FaultProfile{
		StuckImpedanceProb: 0.1,
		AckLossProb:        0.25,
		FeedbackRetries:    3,
		FallbackImpedance:  2,
		PanicProb:          0.05,
		MaxRoundRetries:    4,
	}
	if !reflect.DeepEqual(p, want) {
		t.Errorf("parsed %+v, want %+v", p, want)
	}
}

func TestParseFaultProfileEmptyElements(t *testing.T) {
	p, err := parseFaultProfile("outage=0.5,,")
	if err != nil {
		t.Fatal(err)
	}
	if p.EnergyOutageProb != 0.5 {
		t.Errorf("outage = %v, want 0.5", p.EnergyOutageProb)
	}
}

func TestParseFaultProfileErrors(t *testing.T) {
	cases := map[string]string{
		"bogus-knob=1":   "unknown key",
		"ack-loss":       "not key=value",
		"ack-loss=high":  "ack-loss",
		"retries=weekly": "retries",
	}
	for spec, frag := range cases {
		if _, err := parseFaultProfile(spec); err == nil || !strings.Contains(err.Error(), frag) {
			t.Errorf("parseFaultProfile(%q) = %v, want error containing %q", spec, err, frag)
		}
	}
}

func TestParseRates(t *testing.T) {
	got, err := parseRates(" 0, 0.1 ,0.5,")
	if err != nil {
		t.Fatal(err)
	}
	if want := []float64{0, 0.1, 0.5}; !reflect.DeepEqual(got, want) {
		t.Errorf("parseRates = %v, want %v", got, want)
	}
	if _, err := parseRates(",,"); err == nil {
		t.Error("empty rate list must error")
	}
	if _, err := parseRates("0.1,zap"); err == nil {
		t.Error("malformed rate must error")
	}
}
