package main

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	cbma "cbma"
)

func TestParseFaultProfile(t *testing.T) {
	p, err := parseFaultProfile("stuck=0.1, ack-loss=0.25,feedback-retries=3, fallback-state=2,panic=0.05,retries=4")
	if err != nil {
		t.Fatal(err)
	}
	want := &cbma.FaultProfile{
		StuckImpedanceProb: 0.1,
		AckLossProb:        0.25,
		FeedbackRetries:    3,
		FallbackImpedance:  2,
		PanicProb:          0.05,
		MaxRoundRetries:    4,
	}
	if !reflect.DeepEqual(p, want) {
		t.Errorf("parsed %+v, want %+v", p, want)
	}
}

func TestParseFaultProfileEmptyElements(t *testing.T) {
	p, err := parseFaultProfile("outage=0.5,,")
	if err != nil {
		t.Fatal(err)
	}
	if p.EnergyOutageProb != 0.5 {
		t.Errorf("outage = %v, want 0.5", p.EnergyOutageProb)
	}
}

func TestParseFaultProfileErrors(t *testing.T) {
	cases := map[string]string{
		"bogus-knob=1":   "unknown key",
		"ack-loss":       "not key=value",
		"ack-loss=high":  "ack-loss",
		"retries=weekly": "retries",
	}
	for spec, frag := range cases {
		if _, err := parseFaultProfile(spec); err == nil || !strings.Contains(err.Error(), frag) {
			t.Errorf("parseFaultProfile(%q) = %v, want error containing %q", spec, err, frag)
		}
	}
}

// readManifest decodes the fields of dir/manifest.json the tests assert on.
func readManifest(t *testing.T, dir string) (man struct {
	Tool        string `json:"tool"`
	Interrupted bool   `json:"interrupted"`
	Events      struct {
		Written int64 `json:"written"`
	} `json:"events"`
}) {
	t.Helper()
	b, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &man); err != nil {
		t.Fatal(err)
	}
	return man
}

func TestRunWritesObsArtifacts(t *testing.T) {
	dir := t.TempDir()
	err := run(context.Background(), []string{
		"-tags", "2", "-packets", "10", "-obs", "-obs-out", dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	events, err := os.ReadFile(filepath.Join(dir, "events.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(events), `"type":"round"`) {
		t.Error("event log has no round events")
	}
	man := readManifest(t, dir)
	if man.Tool != "cbmasim" || man.Interrupted {
		t.Errorf("manifest = %+v, want tool cbmasim and not interrupted", man)
	}
	if man.Events.Written == 0 {
		t.Error("manifest records zero written events")
	}
}

// TestRunObsFlushOnInterrupt pins the SIGINT contract: a cancelled run still
// flushes the pending telemetry events and writes a partial manifest marked
// interrupted, alongside the partial-metrics flush.
func TestRunObsFlushOnInterrupt(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the signal fired before the run — the extreme partial case
	err := run(ctx, []string{
		"-tags", "2", "-packets", "50", "-obs", "-obs-out", dir,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("run = %v, want context.Canceled", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "events.jsonl")); err != nil {
		t.Fatalf("event log not flushed: %v", err)
	}
	man := readManifest(t, dir)
	if !man.Interrupted {
		t.Errorf("manifest not marked interrupted: %+v", man)
	}
}

func TestParseRates(t *testing.T) {
	got, err := parseRates(" 0, 0.1 ,0.5,")
	if err != nil {
		t.Fatal(err)
	}
	if want := []float64{0, 0.1, 0.5}; !reflect.DeepEqual(got, want) {
		t.Errorf("parseRates = %v, want %v", got, want)
	}
	if _, err := parseRates(",,"); err == nil {
		t.Error("empty rate list must error")
	}
	if _, err := parseRates("0.1,zap"); err == nil {
		t.Error("malformed rate must error")
	}
}
