// Command cbmasim runs one CBMA scenario from command-line flags and prints
// its metrics — the interactive front door to the simulator.
//
//	cbmasim -tags 5 -family 2nc -distance 2 -packets 300
//	cbmasim -tags 4 -power-control -random-impedance
//	cbmasim -tags 3 -interference wifi
//	cbmasim -tags 3 -fault "ack-loss=0.2,outage=0.05,panic=0.01"
//	cbmasim -tags 3 -power-control -random-impedance -fault-sweep ack-loss
//
// SIGINT (Ctrl-C) cancels the run cooperatively: the metrics collected up
// to the interruption are flushed (marked "interrupted") before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"

	"cbma"
	"cbma/internal/obs"
	"cbma/internal/pn"
	"cbma/internal/serve/shard"
	"cbma/internal/sim"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cbmasim:", err)
		os.Exit(1)
	}
}

// parseFaultProfile builds a fault profile from a comma-separated k=v spec,
// e.g. "ack-loss=0.2,stuck=0.1,retries=3". Unknown keys are an error so
// typos fail loudly instead of silently injecting nothing.
func parseFaultProfile(spec string) (*cbma.FaultProfile, error) {
	var p cbma.FaultProfile
	floats := map[string]*float64{
		"stuck":        &p.StuckImpedanceProb,
		"drift-chips":  &p.ClockDriftChips,
		"jitter-chips": &p.ExtraJitterChips,
		"outage":       &p.EnergyOutageProb,
		"ack-loss":     &p.AckLossProb,
		"ack-corrupt":  &p.AckCorruptProb,
		"spurious-ack": &p.SpuriousAckProb,
		"burst":        &p.BurstProb,
		"burst-dbm":    &p.BurstPowerDBm,
		"burst-sec":    &p.BurstMeanSec,
		"fade":         &p.DeepFadeProb,
		"fade-db":      &p.DeepFadeDB,
		"panic":        &p.PanicProb,
		"transient":    &p.TransientErrProb,
	}
	ints := map[string]*int{
		"feedback-retries": &p.FeedbackRetries,
		"fallback-state":   &p.FallbackImpedance,
		"retries":          &p.MaxRoundRetries,
	}
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("fault: %q is not key=value", kv)
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		if dst, found := floats[key]; found {
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: %s: %v", key, err)
			}
			*dst = f
			continue
		}
		if dst, found := ints[key]; found {
			n, err := strconv.Atoi(val)
			if err != nil {
				return nil, fmt.Errorf("fault: %s: %v", key, err)
			}
			*dst = n
			continue
		}
		return nil, fmt.Errorf("fault: unknown key %q", key)
	}
	return &p, nil
}

// parseRates parses the comma-separated -sweep-rates list.
func parseRates(spec string) ([]float64, error) {
	var out []float64
	for _, s := range strings.Split(spec, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return nil, fmt.Errorf("sweep-rates: %v", err)
		}
		out = append(out, f)
	}
	if len(out) == 0 {
		return nil, errors.New("sweep-rates: no rates given")
	}
	return out, nil
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("cbmasim", flag.ContinueOnError)
	var (
		tags        = fs.Int("tags", 2, "concurrent tags")
		family      = fs.String("family", "gold", "code family: gold, 2nc, walsh, kasami")
		distance    = fs.Float64("distance", 1.0, "tag-to-receiver distance (m)")
		packets     = fs.Int("packets", 200, "collision rounds")
		payload     = fs.Int("payload", 16, "payload bytes per frame")
		bitrate     = fs.Float64("bitrate", 1e6, "on-air bit rate (bps)")
		txPower     = fs.Float64("tx-power", 20, "excitation power (dBm)")
		preamble    = fs.Int("preamble", 8, "preamble length (bits)")
		seed        = fs.Int64("seed", 1, "random seed")
		pc          = fs.Bool("power-control", false, "enable the Algorithm 1 loop")
		randImp     = fs.Bool("random-impedance", false, "boot tags in random impedance states")
		nodeSel     = fs.Bool("node-selection", false, "enable §V-C node selection")
		sic         = fs.Bool("sic", false, "enable successive interference cancellation")
		interf      = fs.String("interference", "", "interference: '', wifi, bluetooth, ofdm")
		perTag      = fs.Bool("per-tag", false, "print per-tag delivery ratios")
		record      = fs.String("record", "", "write a channel trace to this file (§VIII-C emulation)")
		replay      = fs.String("replay", "", "replay a channel trace from this file instead of live draws")
		cfo         = fs.Float64("cfo-ppm", 0, "per-tag carrier frequency offset (± ppm)")
		tracking    = fs.Bool("phase-tracking", false, "enable decision-directed phase tracking")
		faultSpec   = fs.String("fault", "", "fault profile as k=v pairs: stuck, drift-chips, jitter-chips, outage, ack-loss, ack-corrupt, spurious-ack, feedback-retries, fallback-state, burst, burst-dbm, burst-sec, fade, fade-db, panic, transient, retries")
		faultSweep  = fs.String("fault-sweep", "", "sweep a fault knob over -sweep-rates: ack-loss or outage")
		sweepRates  = fs.String("sweep-rates", "0,0.1,0.2,0.3,0.4,0.5", "comma-separated rates for -fault-sweep")
		obsOn       = fs.Bool("obs", false, "enable telemetry: stage timings, JSONL events and a run manifest under -obs-out")
		obsOut      = fs.String("obs-out", "obs", "directory for events.jsonl and manifest.json (with -obs)")
		pprofAddr   = fs.String("pprof", "", "serve net/http/pprof and expvar on this address (e.g. localhost:6060)")
		shards      = fs.Int("shards", 0, "run as a sharded campaign across this many worker processes (0 disables; implies crash-tolerant dispatch)")
		resume      = fs.String("resume", "", "journal directory for checkpointed, resumable execution (implies -shards 1 when -shards is unset)")
		shardWorker = fs.Bool("shard-worker", false, "internal: serve one shard assignment on stdin/stdout and exit (spawned by the coordinator)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *shardWorker {
		// Worker mode: this process IS the subprocess transport's far end.
		// Everything it needs arrives on stdin; flags beyond this one are
		// ignored by construction (the coordinator passes none).
		return shard.ServeWorker(ctx, os.Stdin, os.Stdout, nil)
	}

	fam, err := pn.ParseFamily(*family)
	if err != nil {
		return err
	}
	scn := cbma.DefaultScenario()
	scn.Seed = *seed
	scn.NumTags = *tags
	scn.Family = fam
	scn.TagLineDistance = *distance
	scn.Packets = *packets
	scn.PayloadBytes = *payload
	scn.ChipRateHz = *bitrate
	scn.Channel.TxPowerDBm = *txPower
	scn.Frame.PreambleBits = *preamble
	scn.PowerControl = *pc
	scn.RandomInitialImpedance = *randImp
	scn.SIC = *sic
	switch *interf {
	case "":
	case "wifi":
		scn.Interferers = []cbma.Interferer{&cbma.WiFiInterferer{PowerDBm: scn.Channel.NoiseFloorDBm + 14}}
	case "bluetooth":
		scn.Interferers = []cbma.Interferer{&cbma.BluetoothInterferer{PowerDBm: scn.Channel.NoiseFloorDBm + 14}}
	case "ofdm":
		scn.OFDMExcitation = true
	default:
		return fmt.Errorf("unknown interference %q", *interf)
	}

	scn.CFOppm = *cfo
	scn.PhaseTracking = *tracking
	if *faultSpec != "" {
		prof, err := parseFaultProfile(*faultSpec)
		if err != nil {
			return err
		}
		scn.Fault = prof
	}

	// Sharded execution: the run becomes a campaign through the
	// crash-tolerant coordinator, executed by worker processes that re-exec
	// this binary with -shard-worker. Features that live in the System layer
	// or do not survive the JSON wire cannot cross the process boundary and
	// are refused up front.
	shardN := *shards
	if shardN == 0 && *resume != "" {
		shardN = 1 // -resume alone still wants journaled, resumable dispatch
	}
	if shardN > 0 {
		switch {
		case *record != "" || *replay != "":
			return errors.New("-shards/-resume is incompatible with -record/-replay (traces do not cross the worker boundary)")
		case *nodeSel:
			return errors.New("-shards/-resume is incompatible with -node-selection (a per-System feature)")
		case *interf == "wifi" || *interf == "bluetooth":
			return fmt.Errorf("-shards/-resume is incompatible with -interference %s (interferer models are not JSON-wireable)", *interf)
		}
	}

	// Telemetry is assembled here, the composition root: the wall clock is
	// captured once (obs.SystemClock) and injected; nothing below main reads
	// time directly. With -obs the run streams JSONL events to
	// <obs-out>/events.jsonl and leaves a manifest in <obs-out>/manifest.json;
	// -pprof additionally serves the live registry and profiler.
	var (
		telem *obs.Sink
		o     *obs.Observer
	)
	if *obsOn || *pprofAddr != "" {
		if *obsOn {
			s, err := obs.FileSink(*obsOut)
			if err != nil {
				return err
			}
			telem = s
		}
		o = obs.New(obs.Config{
			Clock:    obs.SystemClock(),
			Sink:     telem,
			Progress: obs.NewProgress(os.Stderr, obs.SystemClock()),
		})
		scn.Obs = o
	} else if shardN > 0 {
		// Sharded runs always get a coordinator-driven progress line (with
		// journal-restored points pre-counted, so a resume shows a correct
		// ETA) even without -obs; there is just no event sink or manifest.
		o = obs.New(obs.Config{
			Clock:    obs.SystemClock(),
			Progress: obs.NewProgress(os.Stderr, obs.SystemClock()),
		})
	}
	if *pprofAddr != "" {
		bound, err := obs.ServeDebug(*pprofAddr, o.Registry())
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "cbmasim: debug endpoint at http://%s/debug/pprof/ (registry at /debug/vars, Prometheus at /metrics)\n", bound)
	}
	var coord *shard.Coordinator
	if shardN > 0 {
		sub, err := shard.NewSubprocess(shard.SubprocessConfig{})
		if err != nil {
			return err
		}
		coord = shard.New(shard.Config{
			Shards:     shardN,
			Transport:  sub,
			JournalDir: *resume,
			Obs:        o,
		})
	}
	// finishObs flushes the event sink and writes the run manifest; it is
	// called on every exit path so a SIGINT leaves a complete (partial,
	// Interrupted) telemetry record next to the partial metrics.
	finishObs := func(result any, interrupted bool) error {
		if o == nil {
			return nil
		}
		err := telem.Close()
		if !*obsOn {
			return err
		}
		man := o.Manifest("cbmasim")
		man.Seed = *seed
		man.Workers = scn.Workers
		man.Interrupted = interrupted
		man.Result = result
		if shardN > 0 {
			man.Shards = shardN
			man.Resumed = int(o.Counter("shard.points.restored").Value())
		}
		if h, herr := scn.Hash(); herr == nil {
			man.ScenarioHash = h
		}
		if werr := obs.WriteManifest(filepath.Join(*obsOut, obs.ManifestFile), man); err == nil {
			err = werr
		}
		return err
	}

	if *faultSweep != "" {
		rates, err := parseRates(*sweepRates)
		if err != nil {
			return err
		}
		if coord != nil {
			err = runFaultSweepSharded(ctx, scn, *faultSweep, rates, coord)
		} else {
			err = runFaultSweep(ctx, scn, *faultSweep, rates)
		}
		interrupted := err != nil && ctx.Err() != nil && errors.Is(err, ctx.Err())
		if oerr := finishObs(nil, interrupted); err == nil {
			err = oerr
		}
		return err
	}

	var (
		m           cbma.Metrics
		rep         cbma.Report
		interrupted bool
	)
	if coord != nil {
		// Sharded: the scenario runs as a one-point campaign through the
		// coordinator — journaled and resumable when -resume is set.
		ms, rerr := coord.Run(ctx, []cbma.Scenario{scn}, cbma.CampaignOpts{What: "cbmasim"})
		err = rerr
		interrupted = err != nil && ctx.Err() != nil && errors.Is(err, ctx.Err())
		if err != nil && !interrupted {
			_ = finishObs(nil, false)
			return err
		}
		if len(ms) > 0 {
			m = ms[0]
		}
	} else {
		sys, serr := cbma.NewSystem(cbma.SystemConfig{Scenario: scn, NodeSelection: *nodeSel})
		if serr != nil {
			return serr
		}
		var recorder *cbma.TraceRecorder
		if *record != "" {
			recorder = cbma.NewTraceRecorder(fmt.Sprintf("cbmasim tags=%d family=%s", *tags, fam))
			sys.Engine().RecordTo(recorder)
		}
		if *replay != "" {
			f, ferr := os.Open(*replay)
			if ferr != nil {
				return ferr
			}
			tr, terr := cbma.ReadTrace(f)
			f.Close()
			if terr != nil {
				return terr
			}
			sys.Engine().ReplayFrom(cbma.NewTracePlayer(tr))
		}
		rep, err = sys.RunContext(ctx)
		interrupted = err != nil && ctx.Err() != nil && errors.Is(err, ctx.Err())
		if err != nil && !interrupted {
			_ = finishObs(nil, false) // best effort: the run died on a config error
			return err
		}
		if recorder != nil {
			f, ferr := os.Create(*record)
			if ferr != nil {
				return ferr
			}
			werr := recorder.Trace().Write(f)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				return werr
			}
			fmt.Printf("  trace recorded         %s (%d rounds)\n", *record, recorder.Len())
		}
		m = rep.Final
	}
	fmt.Printf("tags=%d family=%s distance=%.2fm bitrate=%.3gbps packets=%d\n",
		*tags, fam, *distance, *bitrate, *packets)
	// The content hash is the scenario's identity in result caches and run
	// manifests (sim.Scenario.Hash); printing it here lets a CLI run be
	// correlated with cbmad cache entries and BENCH manifests.
	if h, herr := scn.Hash(); herr == nil {
		fmt.Printf("  scenario hash          %s\n", h)
	}
	fmt.Printf("  frames sent/delivered  %d / %d\n", m.FramesSent, m.FramesDelivered)
	fmt.Printf("  frame error rate       %.4f\n", m.FER)
	fmt.Printf("  goodput                %.1f kbps\n", m.GoodputBps/1e3)
	fmt.Printf("  raw aggregate rate     %.3f Mbps\n", m.RawAggregateBps/1e6)
	if *pc {
		fmt.Printf("  power-control rounds   %d (converged %v)\n",
			m.PowerControlRounds, m.PowerControlConverged)
		if m.PowerControlRetries > 0 || m.PowerControlFellBack {
			fmt.Printf("  feedback retries       %d (fell back %v)\n",
				m.PowerControlRetries, m.PowerControlFellBack)
		}
	}
	if *nodeSel {
		fmt.Printf("  tags re-placed         %d\n", rep.Replacements)
	}
	if scn.Fault != nil {
		fmt.Printf("  rounds planned/done    %d / %d (quarantined %d, retries %d)\n",
			m.RoundsPlanned, m.RoundsExecuted, m.RoundsQuarantined, m.RoundRetries)
		fmt.Printf("  faults fired           %s\n", m.Faults)
	}
	if *perTag {
		for id := 0; id < *tags; id++ {
			fmt.Printf("  tag %2d delivery ratio  %.3f\n", id, m.TagDeliveryRatio(id))
		}
	}
	if interrupted {
		fmt.Println("  interrupted — metrics above cover the rounds committed before SIGINT")
		if oerr := finishObs(m, true); oerr != nil {
			fmt.Fprintln(os.Stderr, "cbmasim: flushing telemetry:", oerr)
		}
		return err
	}
	return finishObs(m, false)
}

// runFaultSweep runs the BER-vs-fault-rate curve for one knob and prints it
// as a table. An interrupt flushes the points finished so far. A partial
// failure (*cbma.CampaignError) still prints the healthy points' rows —
// failed points are marked in the table, every per-point error is listed,
// and the error propagates so the process exits non-zero instead of
// presenting a silently incomplete curve as a complete one.
func runFaultSweep(ctx context.Context, base cbma.Scenario, knob string, rates []float64) error {
	var (
		series cbma.Series
		err    error
	)
	switch knob {
	case "ack-loss":
		series, err = cbma.FaultSweepAckLoss(ctx, base, rates)
	case "outage":
		series, err = cbma.FaultSweepEnergyOutage(ctx, base, rates)
	default:
		return fmt.Errorf("unknown fault-sweep knob %q (want ack-loss or outage)", knob)
	}
	return printFaultSweep(ctx, base, rates, series, err)
}

// sweepMod resolves a -fault-sweep knob to the sweep's name and profile
// modifier — the same pairs the in-process FaultSweep* wrappers use, so
// both execution paths build identical campaign points.
func sweepMod(knob string) (string, func(*cbma.FaultProfile, float64), error) {
	switch knob {
	case "ack-loss":
		return "ack loss", func(p *cbma.FaultProfile, r float64) { p.AckLossProb = r }, nil
	case "outage":
		return "energy outage", func(p *cbma.FaultProfile, r float64) { p.EnergyOutageProb = r }, nil
	default:
		return "", nil, fmt.Errorf("unknown fault-sweep knob %q (want ack-loss or outage)", knob)
	}
}

// runFaultSweepSharded is runFaultSweep through the sharded coordinator:
// the sweep's points are built by the same sim.FaultSweepPoints the
// in-process path uses, so the resulting curve is bit-identical — only
// the execution substrate (worker processes, journal, retries) differs.
func runFaultSweepSharded(ctx context.Context, base cbma.Scenario, knob string, rates []float64, coord *shard.Coordinator) error {
	name, mod, err := sweepMod(knob)
	if err != nil {
		return err
	}
	points := sim.FaultSweepPoints(base, rates, mod)
	ms, err := coord.Run(ctx, points, cbma.CampaignOpts{What: fmt.Sprintf("fault sweep: %s", name)})
	return printFaultSweep(ctx, base, rates, sim.FaultSweepSeries(name, rates, ms), err)
}

// printFaultSweep renders a sweep's curve and classifies its error:
// interrupts flush the finished prefix, partial campaign failures mark
// their rows and list every per-point error, anything else propagates.
func printFaultSweep(ctx context.Context, base cbma.Scenario, rates []float64, series cbma.Series, err error) error {
	interrupted := err != nil && ctx.Err() != nil && errors.Is(err, ctx.Err())
	var cerr *cbma.CampaignError
	partial := errors.As(err, &cerr)
	if err != nil && !interrupted && !partial {
		return err
	}
	failed := make(map[int]bool)
	if partial {
		for _, pe := range cerr.Points {
			failed[pe.Point] = true
		}
	}
	fmt.Printf("fault sweep: %s (tags=%d packets=%d)\n", series.Name, base.NumTags, base.Packets)
	if h, herr := base.Hash(); herr == nil {
		fmt.Printf("  base scenario hash %s\n", h)
	}
	fmt.Printf("  %-8s %-8s %-14s %s\n", "rate", "FER", "sent/delivered", "degradation")
	for i, pt := range series.Points {
		if failed[i] {
			fmt.Printf("  %-8.3f %-8s %-14s %s\n", pt.X, "-", "-", "FAILED (see below)")
			continue
		}
		m := pt.Metrics
		degr := "-"
		switch {
		case m.RoundsQuarantined > 0 || m.RoundRetries > 0:
			degr = fmt.Sprintf("quarantined=%d retries=%d %s", m.RoundsQuarantined, m.RoundRetries, m.Faults)
		case m.Faults.Any():
			degr = m.Faults.String()
		}
		fmt.Printf("  %-8.3f %-8.4f %-14s %s\n",
			pt.X, m.FER, fmt.Sprintf("%d/%d", m.FramesSent, m.FramesDelivered), degr)
	}
	if interrupted {
		fmt.Println("  interrupted — points above cover the sweep finished before SIGINT")
		return err
	}
	if partial {
		fmt.Fprintf(os.Stderr, "cbmasim: %d of %d sweep points failed:\n", len(cerr.Points), len(rates))
		for _, pe := range cerr.Points {
			rate := "?"
			if pe.Point >= 0 && pe.Point < len(rates) {
				rate = fmt.Sprintf("%.3f", rates[pe.Point])
			}
			fmt.Fprintf(os.Stderr, "  point %d (rate %s): %v\n", pe.Point, rate, pe.Err)
		}
		return err
	}
	return nil
}
