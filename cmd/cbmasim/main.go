// Command cbmasim runs one CBMA scenario from command-line flags and prints
// its metrics — the interactive front door to the simulator.
//
//	cbmasim -tags 5 -family 2nc -distance 2 -packets 300
//	cbmasim -tags 4 -power-control -random-impedance
//	cbmasim -tags 3 -interference wifi
package main

import (
	"flag"
	"fmt"
	"os"

	"cbma"
	"cbma/internal/pn"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cbmasim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("cbmasim", flag.ContinueOnError)
	var (
		tags     = fs.Int("tags", 2, "concurrent tags")
		family   = fs.String("family", "gold", "code family: gold, 2nc, walsh, kasami")
		distance = fs.Float64("distance", 1.0, "tag-to-receiver distance (m)")
		packets  = fs.Int("packets", 200, "collision rounds")
		payload  = fs.Int("payload", 16, "payload bytes per frame")
		bitrate  = fs.Float64("bitrate", 1e6, "on-air bit rate (bps)")
		txPower  = fs.Float64("tx-power", 20, "excitation power (dBm)")
		preamble = fs.Int("preamble", 8, "preamble length (bits)")
		seed     = fs.Int64("seed", 1, "random seed")
		pc       = fs.Bool("power-control", false, "enable the Algorithm 1 loop")
		randImp  = fs.Bool("random-impedance", false, "boot tags in random impedance states")
		nodeSel  = fs.Bool("node-selection", false, "enable §V-C node selection")
		sic      = fs.Bool("sic", false, "enable successive interference cancellation")
		interf   = fs.String("interference", "", "interference: '', wifi, bluetooth, ofdm")
		perTag   = fs.Bool("per-tag", false, "print per-tag delivery ratios")
		record   = fs.String("record", "", "write a channel trace to this file (§VIII-C emulation)")
		replay   = fs.String("replay", "", "replay a channel trace from this file instead of live draws")
		cfo      = fs.Float64("cfo-ppm", 0, "per-tag carrier frequency offset (± ppm)")
		tracking = fs.Bool("phase-tracking", false, "enable decision-directed phase tracking")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	fam, err := pn.ParseFamily(*family)
	if err != nil {
		return err
	}
	scn := cbma.DefaultScenario()
	scn.Seed = *seed
	scn.NumTags = *tags
	scn.Family = fam
	scn.TagLineDistance = *distance
	scn.Packets = *packets
	scn.PayloadBytes = *payload
	scn.ChipRateHz = *bitrate
	scn.Channel.TxPowerDBm = *txPower
	scn.Frame.PreambleBits = *preamble
	scn.PowerControl = *pc
	scn.RandomInitialImpedance = *randImp
	scn.SIC = *sic
	switch *interf {
	case "":
	case "wifi":
		scn.Interferers = []cbma.Interferer{&cbma.WiFiInterferer{PowerDBm: scn.Channel.NoiseFloorDBm + 14}}
	case "bluetooth":
		scn.Interferers = []cbma.Interferer{&cbma.BluetoothInterferer{PowerDBm: scn.Channel.NoiseFloorDBm + 14}}
	case "ofdm":
		scn.OFDMExcitation = true
	default:
		return fmt.Errorf("unknown interference %q", *interf)
	}

	scn.CFOppm = *cfo
	scn.PhaseTracking = *tracking

	sys, err := cbma.NewSystem(cbma.SystemConfig{Scenario: scn, NodeSelection: *nodeSel})
	if err != nil {
		return err
	}
	var recorder *cbma.TraceRecorder
	if *record != "" {
		recorder = cbma.NewTraceRecorder(fmt.Sprintf("cbmasim tags=%d family=%s", *tags, fam))
		sys.Engine().RecordTo(recorder)
	}
	if *replay != "" {
		f, err := os.Open(*replay)
		if err != nil {
			return err
		}
		tr, err := cbma.ReadTrace(f)
		f.Close()
		if err != nil {
			return err
		}
		sys.Engine().ReplayFrom(cbma.NewTracePlayer(tr))
	}
	rep, err := sys.Run()
	if err != nil {
		return err
	}
	if recorder != nil {
		f, err := os.Create(*record)
		if err != nil {
			return err
		}
		werr := recorder.Trace().Write(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
		fmt.Printf("  trace recorded         %s (%d rounds)\n", *record, recorder.Len())
	}
	m := rep.Final
	fmt.Printf("tags=%d family=%s distance=%.2fm bitrate=%.3gbps packets=%d\n",
		*tags, fam, *distance, *bitrate, *packets)
	fmt.Printf("  frames sent/delivered  %d / %d\n", m.FramesSent, m.FramesDelivered)
	fmt.Printf("  frame error rate       %.4f\n", m.FER)
	fmt.Printf("  goodput                %.1f kbps\n", m.GoodputBps/1e3)
	fmt.Printf("  raw aggregate rate     %.3f Mbps\n", m.RawAggregateBps/1e6)
	if *pc {
		fmt.Printf("  power-control rounds   %d (converged %v)\n",
			m.PowerControlRounds, m.PowerControlConverged)
	}
	if *nodeSel {
		fmt.Printf("  tags re-placed         %d\n", rep.Replacements)
	}
	if *perTag {
		for id := 0; id < *tags; id++ {
			fmt.Printf("  tag %2d delivery ratio  %.3f\n", id, m.TagDeliveryRatio(id))
		}
	}
	return nil
}
