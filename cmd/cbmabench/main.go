// Command cbmabench regenerates every table and figure of the paper's
// evaluation (plus the DESIGN.md ablations) from the simulator.
//
//	cbmabench                  # run the full suite at default fidelity
//	cbmabench -exp fig9b       # one experiment
//	cbmabench -quick           # smoke-run scale
//	cbmabench -list            # show the registry
//	cbmabench -packets 500 -groups 50 -trials 1000
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"cbma/internal/obs"
	"cbma/internal/paperbench"
)

func main() {
	if err := run(os.Args[1:], time.Now); err != nil {
		fmt.Fprintln(os.Stderr, "cbmabench:", err)
		os.Exit(1)
	}
}

// run drives the experiment registry. The clock is injected so the
// command's only wall-clock dependency sits in main, where nodeterm's
// cmd/ exemption (and tests) can see it explicitly.
func run(args []string, now func() time.Time) error {
	fs := flag.NewFlagSet("cbmabench", flag.ContinueOnError)
	var (
		exp     = fs.String("exp", "all", "experiment ID to run, or 'all'")
		list    = fs.Bool("list", false, "list experiment IDs and exit")
		quick   = fs.Bool("quick", false, "smoke-run workload scale")
		seed    = fs.Int64("seed", 1, "random seed")
		packets = fs.Int("packets", 0, "packets per sweep point (0 = scale default)")
		groups  = fs.Int("groups", 0, "random placement groups (0 = scale default)")
		trials  = fs.Int("trials", 0, "user-detection trials (0 = scale default)")
		obsOn   = fs.Bool("obs", false, "enable telemetry: stage timings, JSONL events, live progress and a run manifest under -obs-out")
		obsOut  = fs.String("obs-out", "obs", "directory for events.jsonl and manifest.json (with -obs)")
		pprof   = fs.String("pprof", "", "serve net/http/pprof and expvar on this address (e.g. localhost:6060)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, e := range paperbench.All() {
			fmt.Printf("%-20s %s\n", e.ID, e.Title)
		}
		return nil
	}
	opts := paperbench.DefaultOptions()
	if *quick {
		opts = paperbench.Quick()
	}
	opts.Seed = *seed
	if *packets > 0 {
		opts.Packets = *packets
	}
	if *groups > 0 {
		opts.Groups = *groups
	}
	if *trials > 0 {
		opts.Trials = *trials
	}

	// Telemetry composition root: the injected clock (main passes time.Now)
	// drives spans, ETAs and event timestamps; experiments never read time
	// themselves. With -obs each campaign streams events to
	// <obs-out>/events.jsonl and the run leaves a manifest whose per-stage
	// breakdown makes BENCH_*.json entries reproducible artifacts.
	var (
		sink *obs.Sink
		o    *obs.Observer
	)
	if *obsOn || *pprof != "" {
		if *obsOn {
			s, err := obs.FileSink(*obsOut)
			if err != nil {
				return err
			}
			sink = s
		}
		o = obs.New(obs.Config{
			Clock:    obs.Clock(now),
			Sink:     sink,
			Progress: obs.NewProgress(os.Stderr, obs.Clock(now)),
		})
		opts.Obs = o
	}
	if *pprof != "" {
		bound, err := obs.ServeDebug(*pprof, o.Registry())
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "cbmabench: debug endpoint at http://%s/debug/pprof/ (registry at /debug/vars)\n", bound)
	}

	// The base-scenario content hash ties this run to cbmasim output and
	// cbmad cache entries built from the same canonical configuration.
	baseHash := ""
	if h, herr := opts.BaseScenario().Hash(); herr == nil {
		baseHash = h
		fmt.Printf("base scenario hash: %s\n\n", h)
	}

	var selected []paperbench.Experiment
	if *exp == "all" {
		selected = paperbench.All()
	} else {
		e, ok := paperbench.Find(*exp)
		if !ok {
			return fmt.Errorf("unknown experiment %q (try -list)", *exp)
		}
		selected = []paperbench.Experiment{e}
	}
	ran := make([]string, 0, len(selected))
	for _, e := range selected {
		fmt.Printf("=== %s: %s\n", e.ID, e.Title)
		start := now()
		if err := e.Run(os.Stdout, opts); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Printf("    (%.1fs)\n\n", now().Sub(start).Seconds())
		ran = append(ran, e.ID)
	}
	if o == nil {
		return nil
	}
	err := sink.Close()
	if !*obsOn {
		return err
	}
	man := o.Manifest("cbmabench")
	man.Seed = opts.Seed
	man.Config = map[string]any{"experiments": ran, "options": opts}
	man.ScenarioHash = baseHash
	if werr := obs.WriteManifest(filepath.Join(*obsOut, obs.ManifestFile), man); err == nil {
		err = werr
	}
	return err
}
