# Development entry points; CI (.github/workflows/ci.yml) runs the same
# commands. The repo is stdlib-only: no tool downloads are needed for
# build/test/lint (staticcheck/govulncheck are CI extras).

.PHONY: build test lint fmt fuzz bench serve-test leak-test shard-test

build:
	go build ./...

test:
	go test ./...

# The repo's own determinism/hot-path/concurrency analyzers (see
# DESIGN.md, "Determinism invariants & lint rules"; add -json for JSONL).
lint:
	go vet ./...
	go run ./cmd/cbmalint ./...

fmt:
	gofmt -l .

FUZZTIME ?= 20s

fuzz:
	go test ./internal/pn/ -fuzz FuzzGoldBalance -fuzztime $(FUZZTIME) -run '^$$'
	go test ./internal/rx/ -fuzz FuzzFrameSync -fuzztime $(FUZZTIME) -run '^$$'

bench:
	go test ./internal/sim/ -run '^$$' -bench BenchmarkCampaignFig8a -benchtime 1x

# The campaign-service layers and daemon under the race detector (the
# cbmad e2e equivalence test runs real campaigns; see DESIGN.md,
# "Service architecture").
serve-test:
	go test -race -count=1 ./internal/serve/... ./cmd/cbmad/

# The goroutine-leak accounting CI runs (internal/leaktest is wired into
# every obs/serve/cbmad test package via TestMain).
leak-test:
	go test -race -count=1 -run 'Leak|Close|Drain|Churn|Timer|Daemon|Service' ./internal/obs/... ./internal/serve/... ./cmd/cbmad/

# The sharded coordinator/worker layer under the race detector:
# 1/2/4-shard bit-identical equivalence (including the subprocess wire),
# chaos reassignment, and journaled resume with zero re-execution (see
# DESIGN.md, "Distributed execution & resume").
shard-test:
	go test -race -count=1 ./internal/serve/shard/ ./internal/fault/
