package cbma_test

import (
	"fmt"

	"cbma"
)

// ExampleNewEngine runs the smallest possible collision experiment: two
// tags backscattering concurrently one meter from the receiver.
func ExampleNewEngine() {
	scn := cbma.DefaultScenario()
	scn.Packets = 50
	engine, err := cbma.NewEngine(scn)
	if err != nil {
		panic(err)
	}
	m, err := engine.Run()
	if err != nil {
		panic(err)
	}
	fmt.Println(m.FramesSent)
	// Output: 100
}

// ExampleNewCodeSet inspects the spreading codes tags would be flashed
// with.
func ExampleNewCodeSet() {
	set, err := cbma.NewCodeSet(cbma.Family2NC, 3, 0)
	if err != nil {
		panic(err)
	}
	fmt.Println(set.Size(), set.ChipLength())
	// Output: 3 6
}

// ExampleNewSystem runs the full closed loop — Algorithm 1 power control
// plus node selection — on a deployment with one struggling tag.
func ExampleNewSystem() {
	scn := cbma.DefaultScenario()
	scn.Packets = 40
	scn.PowerControl = true
	scn.RandomInitialImpedance = true
	sys, err := cbma.NewSystem(cbma.SystemConfig{
		Scenario:      scn,
		NodeSelection: true,
	})
	if err != nil {
		panic(err)
	}
	rep, err := sys.Run()
	if err != nil {
		panic(err)
	}
	fmt.Println(rep.Final.FramesSent > 0)
	// Output: true
}

// ExampleTDMA compares concurrent CBMA against polling the same tags one
// at a time.
func ExampleTDMA() {
	scn := cbma.DefaultScenario()
	scn.NumTags = 4
	scn.Packets = 30
	concurrent, err := cbma.RunCBMABaseline(scn)
	if err != nil {
		panic(err)
	}
	polled, err := cbma.TDMA(scn, cbma.TDMAConfig{Rounds: 30})
	if err != nil {
		panic(err)
	}
	fmt.Println(concurrent.GoodputBps > polled.GoodputBps)
	// Output: true
}
