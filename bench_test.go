package cbma_test

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (DESIGN.md's per-experiment index). Each benchmark runs the
// corresponding experiment from internal/paperbench and prints its rows, so
//
//	go test -bench=. -benchmem
//
// reproduces the full evaluation; EXPERIMENTS.md records a reference run.
// Workloads here use a moderate scale (fewer packets than the paper's 1000
// per point) so the whole suite completes in minutes; cmd/cbmabench runs
// the same experiments at any scale.

import (
	"os"
	"testing"

	"cbma"
	"cbma/internal/paperbench"
)

// benchOptions is the workload scale used by the bench harness.
func benchOptions() paperbench.Options {
	o := paperbench.DefaultOptions()
	o.Packets = 120
	o.Groups = 15
	o.Trials = 500
	return o
}

// runExperiment executes one registry entry per benchmark iteration,
// printing its table on the first iteration only.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	exp, ok := paperbench.Find(id)
	if !ok {
		b.Fatalf("experiment %q not in registry", id)
	}
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		w := os.Stdout
		if i > 0 {
			devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
			if err != nil {
				b.Fatal(err)
			}
			defer devnull.Close()
			w = devnull
		}
		if err := exp.Run(w, o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1ExistingSystems(b *testing.B) { runExperiment(b, "table1") }

func BenchmarkTable2PowerDifference(b *testing.B) { runExperiment(b, "table2") }

func BenchmarkFigure5FriisField(b *testing.B) { runExperiment(b, "fig5") }

func BenchmarkFigure8aDistance(b *testing.B) { runExperiment(b, "fig8a") }

func BenchmarkFigure8bPower(b *testing.B) { runExperiment(b, "fig8b") }

func BenchmarkFigure8cPreamble(b *testing.B) { runExperiment(b, "fig8c") }

func BenchmarkFigure9aBitrate(b *testing.B) { runExperiment(b, "fig9a") }

func BenchmarkFigure9bCodes(b *testing.B) { runExperiment(b, "fig9b") }

func BenchmarkFigure9cPowerControl(b *testing.B) { runExperiment(b, "fig9c") }

func BenchmarkUserDetection(b *testing.B) { runExperiment(b, "userdetect") }

func BenchmarkFigure10CDF(b *testing.B) { runExperiment(b, "fig10") }

func BenchmarkFigure11Async(b *testing.B) { runExperiment(b, "fig11") }

func BenchmarkFigure12Conditions(b *testing.B) { runExperiment(b, "fig12") }

func BenchmarkHeadlineThroughput(b *testing.B) { runExperiment(b, "headline") }

func BenchmarkAblationDetector(b *testing.B) { runExperiment(b, "ablation-detector") }

func BenchmarkAblationImpedanceStates(b *testing.B) { runExperiment(b, "ablation-impedance") }

func BenchmarkAblationCodeFamilies(b *testing.B) { runExperiment(b, "ablation-codes") }

func BenchmarkAblationNodeSelection(b *testing.B) { runExperiment(b, "ablation-select") }

func BenchmarkExtensionCFO(b *testing.B) { runExperiment(b, "ext-cfo") }

func BenchmarkExtensionAckLoss(b *testing.B) { runExperiment(b, "ext-ackloss") }

// BenchmarkEngineRound measures the raw cost of one four-tag collision
// round — the simulator's hot path.
func BenchmarkEngineRound(b *testing.B) {
	scn := cbma.DefaultScenario()
	scn.NumTags = 4
	scn.Packets = 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine, err := cbma.NewEngine(scn)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := engine.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchmarkEngineRounds reuses one engine across iterations, so it measures
// the steady-state round cost — including the receiver's matched-filter
// path and the engine's round-buffer reuse — without per-iteration setup.
func benchmarkEngineRounds(b *testing.B, goldDegree uint, numTags int) {
	scn := cbma.DefaultScenario()
	scn.NumTags = numTags
	scn.GoldDegree = goldDegree
	scn.Packets = 1
	engine, err := cbma.NewEngine(scn)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineRoundReceive31 is the paper's default 31-chip Gold
// configuration; its alignment sweep stays on the bit-identical direct
// correlation path.
func BenchmarkEngineRoundReceive31(b *testing.B) { benchmarkEngineRounds(b, 5, 10) }

// BenchmarkEngineRoundReceive127 uses 127-chip Gold codes, whose alignment
// sweep runs through the receiver's frequency-domain filter bank.
func BenchmarkEngineRoundReceive127(b *testing.B) { benchmarkEngineRounds(b, 7, 10) }
